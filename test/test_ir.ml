(* Tests for the IR: ops, loops, builder, dependence analysis, DAG stats. *)

let machine = Machine.itanium2
let latency op = Machine.latency machine op

let daxpy () = Kernels.daxpy ~name:"t_daxpy" ~trip:100
let ddot () = Kernels.ddot ~name:"t_ddot" ~trip:100

(* --- Op --- *)

let test_op_classifiers () =
  let mref = { Op.array = 0; stride = 1; offset = 0; mkind = Op.Direct } in
  let load = Op.make ~uid:0 ~dst:{ Op.id = 0; cls = Op.Flt } (Op.Load mref) in
  let store = Op.make ~uid:1 ~srcs:[ { Op.id = 0; cls = Op.Flt } ] (Op.Store mref) in
  let fmul = Op.make ~uid:2 ~dst:{ Op.id = 1; cls = Op.Flt } Op.Fmul in
  let br = Op.make ~uid:3 (Op.Br Op.Backedge) in
  let mov = Op.make ~uid:4 ~dst:{ Op.id = 2; cls = Op.Int } Op.Mov in
  Alcotest.(check bool) "load is memory" true (Op.is_memory load);
  Alcotest.(check bool) "load is load" true (Op.is_load load);
  Alcotest.(check bool) "store is store" true (Op.is_store store);
  Alcotest.(check bool) "store not load" false (Op.is_load store);
  Alcotest.(check bool) "fmul is float" true (Op.is_float fmul);
  Alcotest.(check bool) "load not float" false (Op.is_float load);
  Alcotest.(check bool) "br is branch" true (Op.is_branch br);
  Alcotest.(check bool) "mov implicit" true (Op.is_implicit mov)

let test_op_operands () =
  let r0 = { Op.id = 0; cls = Op.Flt } and r1 = { Op.id = 1; cls = Op.Flt } in
  let op = Op.make ~uid:0 ~dst:r1 ~srcs:[ r0; r0 ] Op.Fmul in
  Alcotest.(check int) "operand count" 3 (Op.operand_count op);
  Alcotest.(check int) "uses" 2 (List.length (Op.uses op));
  Alcotest.(check int) "defs" 1 (List.length (Op.defs op))

let test_op_to_string () =
  let r0 = { Op.id = 3; cls = Op.Flt } in
  let op = Op.make ~uid:0 ~dst:r0 (Op.Load { Op.array = 1; stride = 2; offset = 1; mkind = Op.Direct }) in
  Alcotest.(check string) "render" "f3 = load A1[2*i+1]" (Op.to_string op)

(* --- Loop counts --- *)

let test_loop_counts_daxpy () =
  let l = daxpy () in
  (* 2 loads, fmadd, store + ialu/cmp/br overhead = 7 ops *)
  Alcotest.(check int) "ops" 7 (Loop.op_count l);
  Alcotest.(check int) "fp" 1 (Loop.float_op_count l);
  Alcotest.(check int) "branches" 1 (Loop.branch_count l);
  Alcotest.(check int) "mem" 3 (Loop.memory_op_count l);
  Alcotest.(check int) "loads" 2 (Loop.load_count l);
  Alcotest.(check int) "stores" 1 (Loop.store_count l);
  Alcotest.(check int) "implicit" 0 (Loop.implicit_count l);
  Alcotest.(check bool) "unrollable" true (Loop.unrollable l)

let test_loop_flags () =
  let exit_loop = Kernels.early_exit_search ~name:"t_exit" ~trip:64 in
  let call_loop = Kernels.call_in_loop ~name:"t_call" ~trip:64 in
  Alcotest.(check bool) "exit flag" true (Loop.has_early_exit exit_loop);
  Alcotest.(check bool) "call flag" true (Loop.has_call call_loop);
  Alcotest.(check bool) "exit not unrollable" false (Loop.unrollable exit_loop);
  Alcotest.(check bool) "call not unrollable" false (Loop.unrollable call_loop)

let test_loop_live_in () =
  let l = daxpy () in
  (* invariant 'a' and the induction variable are live-in *)
  Alcotest.(check int) "live-ins" 2 (List.length (Loop.live_in_regs l))

let test_loop_code_bytes () =
  let l = daxpy () in
  (* 7 ops = 3 bundles = 48 bytes *)
  Alcotest.(check int) "code bytes" 48 (Loop.code_bytes l)

let test_backedge_index () =
  let l = daxpy () in
  Alcotest.(check int) "backedge last" (Loop.op_count l - 1) (Loop.backedge_index l)

let test_indirect_count () =
  let g = Kernels.gather ~name:"t_gather" ~trip:64 in
  Alcotest.(check int) "indirect refs" 1 (Loop.indirect_ref_count g)

(* --- validate --- *)

let test_validate_ok_all_kernels () =
  List.iter
    (fun (name, maker) ->
      let l = maker ~name ~trip:64 in
      match Loop.validate l with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" name e)
    Kernels.all

let expect_invalid what l =
  match Loop.validate l with
  | Ok () -> Alcotest.failf "%s should be invalid" what
  | Error _ -> ()

let test_validate_rejects () =
  let l = daxpy () in
  expect_invalid "empty body" { l with Loop.body = [||] };
  expect_invalid "backedge not last"
    {
      l with
      Loop.body =
        (let b = Array.copy l.Loop.body in
         let n = Array.length b in
         let tmp = b.(n - 1) in
         b.(n - 1) <- b.(n - 2);
         b.(n - 2) <- tmp;
         b);
    };
  expect_invalid "negative trip" { l with Loop.trip_actual = -1 };
  expect_invalid "zero outer" { l with Loop.outer_trip = 0 };
  expect_invalid "exit prob 1" { l with Loop.exit_prob = 1.0 };
  expect_invalid "bad array"
    {
      l with
      Loop.body =
        Array.map
          (fun (op : Op.t) ->
            match op.Op.opcode with
            | Op.Load m -> { op with Op.opcode = Op.Load { m with Op.array = 99 } }
            | _ -> op)
          l.Loop.body;
    }

let test_builder_class_check () =
  let b = Builder.create ~name:"t" ~trip:4 () in
  let i = Builder.ireg b in
  Alcotest.check_raises "fadd wants floats"
    (Invalid_argument "Builder.fadd: operand class mismatch") (fun () ->
      ignore (Builder.fadd b [ i ]))

(* --- Deps --- *)

let edges_between deps src dst =
  List.filter (fun (e : Deps.edge) -> e.Deps.src = src && e.Deps.dst = dst) deps.Deps.edges

let test_deps_daxpy_structure () =
  let l = daxpy () in
  let deps = Deps.build ~latency l in
  (* body: 0 load x, 1 load y, 2 fmadd, 3 store, 4 iv, 5 cmp, 6 br *)
  let flow02 = edges_between deps 0 2 in
  Alcotest.(check bool) "load x feeds fmadd" true
    (List.exists (fun e -> e.Deps.dkind = Deps.Reg_flow && e.Deps.latency = machine.Machine.lat_load) flow02);
  (* load y and store y at the same address: anti dependence, same iter *)
  let anti13 = edges_between deps 1 3 in
  Alcotest.(check bool) "load y before store y" true
    (List.exists (fun e -> e.Deps.dkind = Deps.Mem_anti && e.Deps.distance = 0) anti13);
  (* everything serialises before the backedge *)
  let n = Loop.op_count l in
  for i = 0 to n - 2 do
    Alcotest.(check bool)
      (Printf.sprintf "op %d -> backedge" i)
      true
      (List.exists (fun e -> e.Deps.dkind = Deps.Serial) (edges_between deps i (n - 1)))
  done

let test_deps_recurrence () =
  let l = ddot () in
  let deps = Deps.build ~latency l in
  (* fadd (pos 3) accumulates: self flow edge at distance 1 *)
  let self = edges_between deps 3 3 in
  Alcotest.(check bool) "accumulator recurrence" true
    (List.exists
       (fun e -> e.Deps.dkind = Deps.Reg_flow && e.Deps.distance = 1)
       self)

let test_deps_acyclic_at_distance_zero () =
  List.iter
    (fun (name, maker) ->
      let l = maker ~name ~trip:32 in
      let deps = Deps.build ~latency l in
      Alcotest.(check bool) (name ^ " acyclic") false (Deps.has_cycle_at_distance_zero deps))
    Kernels.all

let test_deps_stride0_carried () =
  let l = Kernels.dot_stride0 ~name:"t_s0" ~trip:32 in
  let deps = Deps.build ~latency l in
  (* stride-0 store feeds next iteration's load of the accumulator cell *)
  Alcotest.(check bool) "carried mem flow" true
    (List.exists
       (fun (e : Deps.edge) -> e.Deps.dkind = Deps.Mem_flow && e.Deps.distance = 1)
       deps.Deps.edges)

let test_deps_language_aliasing () =
  let build lang =
    let b = Builder.create ~lang ~name:"t_alias" ~trip:32 () in
    let x = Builder.add_array b "x" in
    let y = Builder.add_array b "y" in
    let v = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
    Builder.store b ~array:y ~stride:1 ~offset:0 v;
    Builder.finish b
  in
  let cross_edges l =
    let deps = Deps.build ~latency l in
    List.length
      (List.filter
         (fun (e : Deps.edge) ->
           match e.Deps.dkind with
           | Deps.Mem_flow | Deps.Mem_anti | Deps.Mem_output -> true
           | _ -> false)
         deps.Deps.edges)
  in
  Alcotest.(check int) "fortran: no cross-array deps" 0 (cross_edges (build Loop.Fortran));
  Alcotest.(check bool) "c: conservative cross-array deps" true
    (cross_edges (build Loop.C) > 0)

let test_deps_distance_from_offsets () =
  (* store a[i], load a[i-2]: flow at distance 2 (the load reads what was
     stored two iterations ago). *)
  let b = Builder.create ~lang:Loop.Fortran ~name:"t_dist" ~trip:64 () in
  let a = Builder.add_array b "a" in
  let v = Builder.load b ~cls:Op.Flt ~array:a ~stride:1 ~offset:0 () in
  let w = Builder.fmul b [ v; v ] in
  Builder.store b ~array:a ~stride:1 ~offset:2 w;
  let l = Builder.finish b in
  let deps = Deps.build ~latency l in
  Alcotest.(check bool) "mem flow at distance 2" true
    (List.exists
       (fun (e : Deps.edge) ->
         e.Deps.dkind = Deps.Mem_flow && e.Deps.distance = 2 && e.Deps.src = 2 && e.Deps.dst = 0)
       deps.Deps.edges)

let test_intra_iteration_filter () =
  let l = ddot () in
  let deps = Deps.build ~latency l in
  let intra = Deps.intra_iteration deps in
  Alcotest.(check bool) "no carried edges" true
    (List.for_all (fun (e : Deps.edge) -> e.Deps.distance = 0) intra.Deps.edges)

(* --- Dag --- *)

let test_dag_critical_path_chain () =
  let l = Kernels.long_latency_chain ~name:"t_chain" ~trip:32 in
  let deps = Deps.build ~latency l in
  let stats = Dag.analyze deps (fun i -> latency l.Loop.body.(i)) in
  (* load (3) + 5 chained fmuls (4 each) + store (1) = 24 *)
  Alcotest.(check int) "critical path" 24 stats.Dag.critical_path

let test_dag_recurrence_ddot () =
  let l = ddot () in
  let deps = Deps.build ~latency l in
  let stats = Dag.analyze deps (fun i -> latency l.Loop.body.(i)) in
  Alcotest.(check int) "recurrence = fadd latency" machine.Machine.lat_fadd
    stats.Dag.recurrence_latency

let test_dag_computations_wide () =
  let l = Kernels.wide_independent ~name:"t_wide" ~trip:32 in
  let deps = Deps.build ~latency l in
  let stats = Dag.analyze deps (fun i -> latency l.Loop.body.(i)) in
  (* 4 independent computations plus the overhead chain; at least 5
     register-flow components. *)
  Alcotest.(check bool) "several computations" true (stats.Dag.computations >= 5)

let test_dag_mem_carried_prefix_sum () =
  let l = Kernels.prefix_sum ~name:"t_ps" ~trip:32 in
  let deps = Deps.build ~latency l in
  let stats = Dag.analyze deps (fun i -> latency l.Loop.body.(i)) in
  Alcotest.(check int) "min carried distance 1" 1 stats.Dag.min_mem_to_mem_distance;
  Alcotest.(check bool) "has carried mem deps" true (stats.Dag.mem_to_mem_dependences > 0)

let test_dag_fan_in () =
  let l = daxpy () in
  let deps = Deps.build ~latency l in
  let stats = Dag.analyze deps (fun i -> latency l.Loop.body.(i)) in
  (* fmadd consumes a, xv, yv: fan-in 3 (a is live-in, so 2 flow edges) *)
  Alcotest.(check bool) "fan-in at least 2" true (stats.Dag.max_fan_in >= 2)

(* --- Pretty --- *)

let test_pretty_renders () =
  let s = Pretty.loop_to_string (daxpy ()) in
  Alcotest.(check bool) "mentions loop name" true
    (String.length s > 0
    &&
    let rec find i =
      i + 7 <= String.length s && (String.sub s i 7 = "t_daxpy" || find (i + 1))
    in
    find 0)

(* --- QCheck: random synthetic loops are well-formed --- *)

let synth_loop_gen =
  QCheck.Gen.(
    let* seed = 0 -- 100000 in
    let* p = 0 -- 3 in
    let profile =
      match p with
      | 0 -> Synth.fp_numeric
      | 1 -> Synth.int_pointer
      | 2 -> Synth.media
      | _ -> Synth.scientific_c
    in
    let rng = Rng.create seed in
    return (Synth.generate rng profile ~name:(Printf.sprintf "q%d" seed)))

let prop_synth_valid =
  QCheck.Test.make ~count:200 ~name:"synthetic loops validate"
    (QCheck.make synth_loop_gen)
    (fun l -> match Loop.validate l with Ok () -> true | Error _ -> false)

let prop_synth_deps_acyclic =
  QCheck.Test.make ~count:100 ~name:"synthetic deps acyclic at distance 0"
    (QCheck.make synth_loop_gen)
    (fun l -> not (Deps.has_cycle_at_distance_zero (Deps.build ~latency l)))

let suite =
  [
    ("op classifiers", `Quick, test_op_classifiers);
    ("op operands", `Quick, test_op_operands);
    ("op to_string", `Quick, test_op_to_string);
    ("loop counts daxpy", `Quick, test_loop_counts_daxpy);
    ("loop flags", `Quick, test_loop_flags);
    ("loop live-in", `Quick, test_loop_live_in);
    ("loop code bytes", `Quick, test_loop_code_bytes);
    ("backedge index", `Quick, test_backedge_index);
    ("indirect count", `Quick, test_indirect_count);
    ("validate kernels", `Quick, test_validate_ok_all_kernels);
    ("validate rejects", `Quick, test_validate_rejects);
    ("builder class check", `Quick, test_builder_class_check);
    ("deps daxpy structure", `Quick, test_deps_daxpy_structure);
    ("deps recurrence", `Quick, test_deps_recurrence);
    ("deps acyclic", `Quick, test_deps_acyclic_at_distance_zero);
    ("deps stride0 carried", `Quick, test_deps_stride0_carried);
    ("deps language aliasing", `Quick, test_deps_language_aliasing);
    ("deps offset distance", `Quick, test_deps_distance_from_offsets);
    ("deps intra filter", `Quick, test_intra_iteration_filter);
    ("dag critical path", `Quick, test_dag_critical_path_chain);
    ("dag recurrence", `Quick, test_dag_recurrence_ddot);
    ("dag computations", `Quick, test_dag_computations_wide);
    ("dag mem carried", `Quick, test_dag_mem_carried_prefix_sum);
    ("dag fan-in", `Quick, test_dag_fan_in);
    ("pretty renders", `Quick, test_pretty_renders);
    QCheck_alcotest.to_alcotest prop_synth_valid;
    QCheck_alcotest.to_alcotest prop_synth_deps_acyclic;
  ]
