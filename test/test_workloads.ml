(* Tests for the workload substrate: kernels, synthetic generation, suite. *)

let test_kernels_all_named () =
  let names = List.map fst Kernels.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "rich kernel library" true (List.length names >= 25)

let test_kernels_validate_at_trips () =
  List.iter
    (fun (name, maker) ->
      List.iter
        (fun trip ->
          let l = maker ~name ~trip in
          match Loop.validate l with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s trip=%d: %s" name trip e)
        [ 1; 7; 64; 1023 ])
    Kernels.all

let test_kernels_structure_spot_checks () =
  let ddot = Kernels.ddot ~name:"w_ddot" ~trip:64 in
  Alcotest.(check bool) "ddot has live-out" true (ddot.Loop.live_out <> []);
  let gather = Kernels.gather ~name:"w_gather" ~trip:64 in
  Alcotest.(check bool) "gather has indirect" true (Loop.indirect_ref_count gather > 0);
  let f90 = Kernels.stencil5 ~name:"w_st5" ~trip:64 in
  Alcotest.(check bool) "stencil5 is f90" true (f90.Loop.lang = Loop.Fortran90);
  let strided = Kernels.saxpy_strided ~name:"w_str" ~trip:64 in
  Alcotest.(check bool) "strided loads" true
    (Array.exists
       (fun op -> match Op.mref op with Some m -> m.Op.stride = 4 | None -> false)
       strided.Loop.body)

let test_synth_deterministic () =
  let gen seed = Synth.generate (Rng.create seed) Synth.fp_numeric ~name:"s" in
  let a = gen 42 and b = gen 42 and c = gen 43 in
  Alcotest.(check bool) "same seed same loop" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_synth_profiles_differ () =
  let count_fp profile =
    let rng = Rng.create 7 in
    let total = ref 0 and fp = ref 0 in
    for _ = 1 to 50 do
      let l = Synth.generate rng profile ~name:"p" in
      total := !total + Loop.op_count l;
      fp := !fp + Loop.float_op_count l
    done;
    float_of_int !fp /. float_of_int !total
  in
  Alcotest.(check bool) "fortran profile is FP-dense" true
    (count_fp Synth.fp_numeric > 2.0 *. count_fp Synth.int_pointer)

let test_synth_language_respected () =
  let rng = Rng.create 3 in
  for _ = 1 to 30 do
    let l = Synth.generate rng Synth.int_pointer ~name:"c" in
    Alcotest.(check bool) "int profile is C" true (l.Loop.lang = Loop.C)
  done

let test_snap_trip () =
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    let t = Synth.snap_trip rng 100 in
    Alcotest.(check bool) "snapped positive and bounded" true (t >= 4 && t <= 100)
  done

let test_suite_has_72_benchmarks () =
  let s = Suite.full ~scale:0.05 ~seed:1 in
  Alcotest.(check int) "72 benchmarks" 72 (List.length s);
  let names = List.map (fun b -> b.Suite.bname) s in
  Alcotest.(check int) "unique names" 72 (List.length (List.sort_uniq compare names))

let test_suite_spec2000_first () =
  let s = Suite.full ~scale:0.05 ~seed:1 in
  let spec = Suite.spec2000 ~scale:0.05 ~seed:1 in
  Alcotest.(check int) "24 spec benchmarks" 24 (List.length spec);
  List.iteri
    (fun i b ->
      let b' = List.nth s i in
      Alcotest.(check string) "same order and content" b.Suite.bname b'.Suite.bname;
      Alcotest.(check int) "same loops" (Array.length b.Suite.loops)
        (Array.length b'.Suite.loops))
    spec

let test_suite_weights_normalised () =
  let s = Suite.full ~scale:0.1 ~seed:5 in
  List.iter
    (fun b ->
      let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 b.Suite.loops in
      Alcotest.(check bool) (b.Suite.bname ^ " weights sum to 1") true
        (Float.abs (total -. 1.0) < 1e-9))
    s

let test_suite_loop_names_unique () =
  let s = Suite.full ~scale:0.1 ~seed:5 in
  let names = List.map (fun (_, l) -> l.Loop.name) (Suite.all_loops s) in
  Alcotest.(check int) "globally unique loop names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_suite_scale () =
  let small = Suite.all_loops (Suite.full ~scale:0.1 ~seed:1) in
  let large = Suite.all_loops (Suite.full ~scale:0.5 ~seed:1) in
  Alcotest.(check bool) "scale grows suite" true
    (List.length large > 3 * List.length small)

let test_suite_deterministic () =
  let a = Suite.full ~scale:0.1 ~seed:9 and b = Suite.full ~scale:0.1 ~seed:9 in
  Alcotest.(check bool) "same seed, same suite" true (a = b)

let test_suite_fp_tagging () =
  let s = Suite.spec2000 ~scale:0.05 ~seed:1 in
  let fp_count = List.length (List.filter (fun b -> b.Suite.fp) s) in
  Alcotest.(check int) "13 SPECfp benchmarks" 13 fp_count

let test_suite_loops_validate () =
  let s = Suite.full ~scale:0.1 ~seed:2 in
  List.iter
    (fun (bench, l) ->
      match Loop.validate l with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s/%s: %s" bench l.Loop.name e)
    (Suite.all_loops s)

let test_paper_scale_loop_count () =
  (* The full-scale suite must be in the paper's range: enough raw loops
     that ~2,500 survive the filters. *)
  let s = Suite.full ~scale:1.0 ~seed:2005 in
  let n = List.length (Suite.all_loops s) in
  Alcotest.(check bool) (Printf.sprintf "raw loops = %d in [3000, 4200]" n) true
    (n >= 3000 && n <= 4200)

let suite =
  [
    ("kernels named", `Quick, test_kernels_all_named);
    ("kernels validate", `Quick, test_kernels_validate_at_trips);
    ("kernels structure", `Quick, test_kernels_structure_spot_checks);
    ("synth deterministic", `Quick, test_synth_deterministic);
    ("synth profiles differ", `Quick, test_synth_profiles_differ);
    ("synth language", `Quick, test_synth_language_respected);
    ("synth snap trip", `Quick, test_snap_trip);
    ("suite 72 benchmarks", `Quick, test_suite_has_72_benchmarks);
    ("suite spec2000 prefix", `Quick, test_suite_spec2000_first);
    ("suite weights", `Quick, test_suite_weights_normalised);
    ("suite unique loop names", `Quick, test_suite_loop_names_unique);
    ("suite scale", `Quick, test_suite_scale);
    ("suite deterministic", `Quick, test_suite_deterministic);
    ("suite fp tagging", `Quick, test_suite_fp_tagging);
    ("suite loops validate", `Quick, test_suite_loops_validate);
    ("suite paper scale", `Quick, test_paper_scale_loop_count);
  ]
