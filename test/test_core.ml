(* Tests for the core layer: features, labelling, the ORC heuristic,
   predictors, the compiler pipeline and (slow) the experiment drivers. *)

let machine = Machine.itanium2
let config = { Config.fast with Config.scale = 0.06; runs = 3 }

(* --- Features --- *)

let test_features_38 () =
  Alcotest.(check int) "exactly 38 features" 38 Features.count;
  Alcotest.(check int) "names match" 38 (Array.length Features.names);
  Alcotest.(check int) "unique names" 38
    (List.length (List.sort_uniq compare (Array.to_list Features.names)))

let test_features_paper_table1_present () =
  (* Every row of the paper's Table 1 must be a feature. *)
  List.iter
    (fun n ->
      try ignore (Features.index_of n)
      with Not_found -> Alcotest.failf "missing paper feature %s" n)
    [
      "nest_level"; "num_ops"; "num_fp_ops"; "num_branches"; "num_mem_ops";
      "num_operands"; "num_implicit_ops"; "num_unique_predicates";
      "critical_path_latency"; "est_cycle_length"; "is_fortran";
      "num_parallel_computations"; "max_dependence_height"; "max_memory_height";
      "max_control_height"; "avg_dependence_height"; "num_indirect_refs";
      "min_mem_carried_distance"; "num_mem_carried_deps"; "tripcount";
      "num_uses"; "num_defs";
    ]

let test_features_daxpy_values () =
  let l = Kernels.daxpy ~name:"f_daxpy" ~trip:128 in
  let f = Features.extract machine l in
  let get n = f.(Features.index_of n) in
  Alcotest.(check (float 1e-9)) "nest" 1.0 (get "nest_level");
  Alcotest.(check (float 1e-9)) "ops" 7.0 (get "num_ops");
  Alcotest.(check (float 1e-9)) "fp ops" 1.0 (get "num_fp_ops");
  Alcotest.(check (float 1e-9)) "mem ops" 3.0 (get "num_mem_ops");
  Alcotest.(check (float 1e-9)) "fortran" 1.0 (get "is_fortran");
  Alcotest.(check (float 1e-9)) "known trip" 1.0 (get "known_tripcount");
  Alcotest.(check (float 1e-6)) "log trip" (log1p 128.0) (get "tripcount");
  Alcotest.(check (float 1e-9)) "div8" 1.0 (get "trip_div8");
  Alcotest.(check (float 1e-9)) "no indirect" 0.0 (get "num_indirect_refs");
  Alcotest.(check (float 1e-9)) "no alias (fortran)" 0.0 (get "may_alias")

let test_features_unknown_trip () =
  let l = Kernels.daxpy_unknown_trip ~name:"f_unk" ~trip:128 in
  let f = Features.extract machine l in
  Alcotest.(check (float 1e-9)) "trip sentinel" (-1.0) (f.(Features.index_of "tripcount"));
  Alcotest.(check (float 1e-9)) "not known" 0.0 (f.(Features.index_of "known_tripcount"));
  Alcotest.(check (float 1e-9)) "div8 unknown = 0" 0.0 (f.(Features.index_of "trip_div8"))

let test_features_recurrence () =
  let l = Kernels.ddot ~name:"f_ddot" ~trip:128 in
  let f = Features.extract machine l in
  Alcotest.(check (float 1e-9)) "recurrence latency" (float_of_int machine.Machine.lat_fadd)
    (f.(Features.index_of "recurrence_latency"))

let test_features_all_kernels_finite () =
  List.iter
    (fun (name, maker) ->
      let f = Features.extract machine (maker ~name ~trip:64) in
      Array.iteri
        (fun i v ->
          if not (Float.is_finite v) then
            Alcotest.failf "%s feature %s not finite" name Features.names.(i))
        f)
    Kernels.all

(* --- Orc heuristic --- *)

let test_orc_rejects_calls () =
  let l = Kernels.call_in_loop ~name:"o_call" ~trip:64 in
  Alcotest.(check int) "call -> 1" 1 (Orc_heuristic.no_swp machine l);
  Alcotest.(check int) "call swp -> 1" 1 (Orc_heuristic.swp machine l)

let test_orc_small_body_unrolls () =
  let l = Kernels.dscal ~name:"o_small" ~trip:1024 in
  Alcotest.(check bool) "small body unrolls a lot" true (Orc_heuristic.no_swp machine l >= 4)

let test_orc_trip_respected () =
  let l = Kernels.daxpy ~name:"o_trip" ~trip:3 in
  Alcotest.(check bool) "never exceeds trip" true (Orc_heuristic.no_swp machine l <= 3)

let test_orc_power_of_two () =
  List.iter
    (fun (name, maker) ->
      let l = maker ~name ~trip:100 in
      let u = Orc_heuristic.no_swp machine l in
      Alcotest.(check bool)
        (Printf.sprintf "%s picks power of two (%d)" name u)
        true
        (List.mem u [ 1; 2; 4; 8 ]))
    Kernels.all

let test_orc_in_range () =
  List.iter
    (fun (name, maker) ->
      List.iter
        (fun trip ->
          let l = maker ~name ~trip in
          List.iter
            (fun swp ->
              let u = Orc_heuristic.predict machine ~swp l in
              Alcotest.(check bool)
                (Printf.sprintf "%s trip=%d swp=%b in range" name trip swp)
                true (u >= 1 && u <= 8))
            [ true; false ])
        [ 1; 13; 200 ])
    Kernels.all

let test_orc_swp_seeks_fractional_ii () =
  (* daxpy: 3 memory ops -> ResMII 2 for 1 iteration (2.0/iter); unrolling
     by 4 gives ceil(4*1.5+overhead)/4 < 2, so the SWP heuristic unrolls. *)
  let l = Kernels.daxpy ~name:"o_swp" ~trip:1024 in
  Alcotest.(check bool) "swp heuristic unrolls daxpy" true (Orc_heuristic.swp machine l > 1)

(* --- Labeling --- *)

let labeled_cache = lazy (
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  Labeling.collect config ~swp:false benchmarks)

let test_labeling_shapes () =
  let labeled = Lazy.force labeled_cache in
  Alcotest.(check bool) "collected something" true (Array.length labeled > 50);
  Array.iter
    (fun (l : Labeling.labeled) ->
      Alcotest.(check int) "8 measurements" 8 (Array.length l.Labeling.cycles);
      let b = Labeling.best_factor l in
      Alcotest.(check bool) "best factor in range" true (b >= 1 && b <= 8);
      Array.iter
        (fun c -> Alcotest.(check bool) "positive cycles" true (c > 0))
        l.Labeling.cycles)
    labeled

let test_labeling_filters () =
  let labeled = Lazy.force labeled_cache in
  let kept = List.filter Labeling.passes_filters (Array.to_list labeled) in
  Alcotest.(check bool) "filters keep a majority" true
    (List.length kept * 2 > Array.length labeled);
  List.iter
    (fun (l : Labeling.labeled) ->
      Alcotest.(check bool) "kept loops are unrollable" true
        (Loop.unrollable l.Labeling.loop))
    kept

let test_labeling_dataset () =
  let labeled = Lazy.force labeled_cache in
  let ds = Labeling.to_dataset config labeled in
  Alcotest.(check int) "feature count" 38 (Array.length ds.Dataset.feature_names);
  Alcotest.(check int) "classes" 8 ds.Dataset.n_classes;
  Alcotest.(check int) "filtered size" (List.length (List.filter Labeling.passes_filters (Array.to_list labeled)))
    (Dataset.size ds)

let test_labeling_deterministic () =
  let benchmarks = Suite.full ~scale:0.03 ~seed:7 in
  let a = Labeling.collect config ~swp:false benchmarks in
  let b = Labeling.collect config ~swp:false benchmarks in
  Alcotest.(check bool) "same labels" true
    (Array.length a = Array.length b
    && Array.for_all2
         (fun (x : Labeling.labeled) y -> x.Labeling.cycles = y.Labeling.cycles)
         a b)

(* --- Predictor / Compiler --- *)

let test_predictor_fixed_clamps () =
  let l = Kernels.daxpy ~name:"p_fix" ~trip:64 in
  Alcotest.(check int) "clamp high" 8 (Predictor.predict (Predictor.Fixed 12) config ~swp:false l);
  Alcotest.(check int) "clamp low" 1 (Predictor.predict (Predictor.Fixed 0) config ~swp:false l)

let test_predictor_oracle () =
  let l = Kernels.daxpy ~name:"p_oracle" ~trip:64 in
  let cycles = [| 50; 40; 90; 10; 60; 70; 80; 95 |] in
  Alcotest.(check int) "oracle picks min" 4
    (Predictor.predict Predictor.Oracle config ~swp:false ~cycles l);
  Alcotest.(check bool) "oracle needs cycles" true
    (try ignore (Predictor.predict Predictor.Oracle config ~swp:false l); false
     with Invalid_argument _ -> true)

let test_predictor_nonunrollable_forced () =
  let l = Kernels.call_in_loop ~name:"p_call" ~trip:64 in
  let cycles = [| 90; 10; 20; 30; 40; 50; 60; 70 |] in
  Alcotest.(check int) "oracle forced to 1" 1
    (Predictor.predict Predictor.Oracle config ~swp:false ~cycles l)

let test_predictor_learned_roundtrip () =
  let labeled = Lazy.force labeled_cache in
  let ds = Labeling.to_dataset config labeled in
  let features = Array.init Features.count (fun i -> i) in
  let nn = Predictor.train_nn config ~features ds in
  let svm = Predictor.train_svm ~cap:150 config ~features ds in
  let tree = Predictor.train_tree config ~features ds in
  let l = Kernels.daxpy ~name:"p_learned" ~trip:256 in
  List.iter
    (fun p ->
      let u = Predictor.predict p config ~swp:false l in
      Alcotest.(check bool) (Predictor.name p ^ " in range") true (u >= 1 && u <= 8))
    [ nn; svm; tree ]

let test_compiler_speedup_oracle_dominates () =
  let labeled = Lazy.force labeled_cache in
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  List.iteri
    (fun i b ->
      if i < 6 then begin
        let oracle =
          Compiler.benchmark_speedup config ~swp:false Predictor.Oracle
            ~baseline:Predictor.Orc b labeled
        in
        let fixed1 =
          Compiler.benchmark_speedup config ~swp:false (Predictor.Fixed 1)
            ~baseline:Predictor.Orc b labeled
        in
        Alcotest.(check bool)
          (b.Suite.bname ^ " oracle >= never-unroll")
          true (oracle >= fixed1 -. 1e-9);
        Alcotest.(check bool)
          (b.Suite.bname ^ " oracle >= 1 vs orc")
          true (oracle >= 1.0 -. 1e-9)
      end)
    benchmarks

let test_compiler_compile_runs () =
  let l = Kernels.stencil3 ~name:"c_run" ~trip:64 in
  let u, exe = Compiler.compile config ~swp:false Predictor.Orc l in
  Alcotest.(check bool) "factor in range" true (u >= 1 && u <= 8);
  Alcotest.(check bool) "simulates" true (Compiler.run_compiled config exe > 0)

(* --- Experiments (integration, slow) --- *)

let test_experiments_end_to_end () =
  let env = Experiments.build_env ~progress:false config in
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " non-empty") true (String.length s > 40))
    [
      ("fig1", Experiments.fig1 env);
      ("fig2", Experiments.fig2 env);
      ("fig3", Experiments.fig3 env);
      ("table2", Experiments.table2 env);
      ("table3", Experiments.table3 env);
      ("table4", Experiments.table4 env);
      ("fig4", Experiments.fig4 env);
      ("fig5", Experiments.fig5 env);
      ("summary", Experiments.summary env);
      ("ablations", Experiments.ablations env);
    ]

let test_config_of_env () =
  Alcotest.(check bool) "default when unset" true (Config.of_env () = Config.default || Sys.getenv_opt "FAST" <> None)


(* --- retargeting sanity: different machines, different labels --- *)

let test_machines_shift_optima () =
  (* On the narrow embedded core, wide unrolling saturates immediately; the
     same loop prefers a lower factor than on the 6-issue machine. *)
  let loop = Kernels.wide_independent ~name:"m_shift" ~trip:256 in
  let best m =
    let rng = Rng.create 3 in
    let cycles = Measure.sweep ~noise:0.0 ~runs:1 ~rng ~machine:m ~swp:false loop in
    1 + Stats.min_index (Array.map float_of_int cycles)
  in
  let b_it = best Machine.itanium2 and b_em = best Machine.embedded2 in
  Alcotest.(check bool)
    (Printf.sprintf "embedded prefers <= factor (it2=%d emb=%d)" b_it b_em)
    true (b_em <= b_it)

let test_features_machine_relative () =
  (* est_cycle_length depends on the machine's unit counts. *)
  let loop = Kernels.fir8 ~name:"m_feat" ~trip:64 in
  let f_it = Features.extract Machine.itanium2 loop in
  let f_em = Features.extract Machine.embedded2 loop in
  let i = Features.index_of "est_cycle_length" in
  Alcotest.(check bool) "narrower machine, longer estimate" true (f_em.(i) > f_it.(i))

let test_orc_differs_by_machine () =
  let loop = Kernels.dscal ~name:"m_orc" ~trip:1024 in
  let u_wide = Orc_heuristic.swp Machine.wide_vliw loop in
  let u_emb = Orc_heuristic.swp Machine.embedded2 loop in
  Alcotest.(check bool) "heuristic adapts to machine" true (u_emb <= u_wide)


let test_predictor_persistence_roundtrip () =
  let labeled = Lazy.force labeled_cache in
  let ds = Labeling.to_dataset config labeled in
  let features = Array.init Features.count (fun i -> i) in
  let queries =
    List.map (fun (n, m) -> m ~name:n ~trip:96)
      [ ("q1", Kernels.daxpy); ("q2", Kernels.stencil3); ("q3", Kernels.int_sum) ]
  in
  let roundtrip p =
    let path = Filename.temp_file "unrollml_model" ".artifact" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let a = Predictor.to_artifact config ~dataset_digest:(Dataset.digest ds) p in
        Model_artifact.save a path;
        let a' =
          match Model_artifact.load path with
          | Ok a' -> a'
          | Error e -> Alcotest.fail ("artifact load: " ^ e)
        in
        let p' =
          match Predictor.of_artifact a' with
          | Ok p' -> p'
          | Error e -> Alcotest.fail ("of_artifact: " ^ e)
        in
        List.iter
          (fun loop ->
            Alcotest.(check int)
              (Predictor.name p ^ " prediction preserved")
              (Predictor.predict p config ~swp:false loop)
              (Predictor.predict p' config ~swp:false loop))
          queries)
  in
  roundtrip (Predictor.train_nn config ~features ds);
  roundtrip (Predictor.train_svm ~cap:120 config ~features ds)

let test_predictor_save_rejects_unlearned () =
  Alcotest.(check bool) "oracle not saveable" true
    (try
       ignore (Predictor.to_artifact config ~dataset_digest:"-" Predictor.Oracle);
       false
     with Invalid_argument _ -> true)

(* --- Joint (factor x SWP) decision space --- *)

let labeled_on_cache = lazy (
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  Labeling.collect config ~swp:true benchmarks)

let test_joint_encode_decode_roundtrip () =
  Alcotest.(check int) "16 classes" 16 Labeling.Joint.classes;
  for c = 0 to Labeling.Joint.classes - 1 do
    let factor, swp = Labeling.Joint.decode c in
    Alcotest.(check int) (Printf.sprintf "class %d roundtrips" c) c
      (Labeling.Joint.encode ~factor ~swp);
    Alcotest.(check bool) "factor in range" true (factor >= 1 && factor <= 8)
  done;
  for factor = 1 to 8 do
    List.iter
      (fun swp ->
        let c = Labeling.Joint.encode ~factor ~swp in
        Alcotest.(check (pair int bool))
          (Printf.sprintf "encode %d swp=%b roundtrips" factor swp)
          (factor, swp) (Labeling.Joint.decode c))
      [ false; true ]
  done;
  Alcotest.(check bool) "factor 0 rejected" true
    (try ignore (Labeling.Joint.encode ~factor:0 ~swp:false); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "class 16 rejected" true
    (try ignore (Labeling.Joint.decode 16); false
     with Invalid_argument _ -> true)

let test_joint_merge_layout () =
  let off = Lazy.force labeled_cache and on = Lazy.force labeled_on_cache in
  let merged = Labeling.merge_joint ~off ~on in
  Alcotest.(check int) "one merged row per loop" (Array.length off) (Array.length merged);
  Array.iteri
    (fun i (m : Labeling.labeled) ->
      Alcotest.(check int) "16 costs" 16 (Array.length m.Labeling.cycles);
      Alcotest.(check (array int)) "off half" off.(i).Labeling.cycles
        (Array.sub m.Labeling.cycles 0 8);
      Alcotest.(check (array int)) "on half" on.(i).Labeling.cycles
        (Array.sub m.Labeling.cycles 8 8))
    merged

let test_joint_dataset_labels_are_argmin () =
  let off = Lazy.force labeled_cache and on = Lazy.force labeled_on_cache in
  let ds = Labeling.to_joint_dataset config ~off ~on in
  Alcotest.(check int) "16-way" 16 ds.Dataset.n_classes;
  Array.iter
    (fun (e : Dataset.example) ->
      Alcotest.(check int) "16 costs" 16 (Array.length e.Dataset.costs);
      let best = ref 0 in
      Array.iteri (fun i c -> if c < e.Dataset.costs.(!best) then best := i) e.Dataset.costs;
      Alcotest.(check (float 0.0)) "label is the cheapest class"
        e.Dataset.costs.(!best) e.Dataset.costs.(e.Dataset.label))
    ds.Dataset.examples

let test_joint_folds_match_factor_folds () =
  (* The grouped-LOOCV fold structure — example order, tags, groups — must
     be identical between the 8-way and 16-way heads, so head accuracies
     are comparable example for example. *)
  let off = Lazy.force labeled_cache and on = Lazy.force labeled_on_cache in
  let single = Labeling.to_dataset ~filtered:false config off in
  let joint = Labeling.to_joint_dataset ~filtered:false config ~off ~on in
  Alcotest.(check int) "same size" (Dataset.size single) (Dataset.size joint);
  Array.iteri
    (fun i (e : Dataset.example) ->
      let j = joint.Dataset.examples.(i) in
      Alcotest.(check string) "same tag" e.Dataset.tag j.Dataset.tag;
      Alcotest.(check string) "same group" e.Dataset.group j.Dataset.group;
      Alcotest.(check (array (float 0.0))) "same features" e.Dataset.features
        j.Dataset.features)
    single.Dataset.examples

let test_predict_joint_basics () =
  let l = Kernels.daxpy ~name:"pj" ~trip:64 in
  let cycles = Array.init 16 (fun i -> if i = 11 then 10 else 100 + i) in
  Alcotest.(check (pair int bool)) "oracle decodes joint argmin" (4, true)
    (Predictor.predict_joint Predictor.Oracle config ~cycles l);
  Alcotest.(check (pair int bool)) "fixed pins swp off" (8, false)
    (Predictor.predict_joint (Predictor.Fixed 12) config l);
  let call = Kernels.call_in_loop ~name:"pj_call" ~trip:64 in
  Alcotest.(check (pair int bool)) "non-unrollable forced" (1, false)
    (Predictor.predict_joint Predictor.Oracle config ~cycles call);
  let f, s = Predictor.predict_joint Predictor.Orc config l in
  Alcotest.(check bool) "orc stays in factor space" true (f >= 1 && f <= 8 && not s)

let test_joint_pinned_rows_match_single_space () =
  (* [joint_speedup_rows ~space:(Pinned false)] is an independent
     implementation of the single-space engine: over the same training
     dataset and merged sweep it must reproduce [speedup_rows ~swp:false]
     exactly, learner by learner. *)
  let off = Lazy.force labeled_cache and on = Lazy.force labeled_on_cache in
  let merged = Labeling.merge_joint ~off ~on in
  let dataset = Labeling.to_dataset config off in
  let benchmarks =
    List.filteri (fun i _ -> i < 3)
      (Suite.full ~scale:config.Config.scale ~seed:config.Config.seed)
  in
  let features = Array.init Features.count (fun i -> i) in
  let single =
    Compiler.speedup_rows config ~swp:false ~features ~benchmarks ~dataset off
  in
  let pinned =
    Compiler.joint_speedup_rows config ~space:(Compiler.Pinned false) ~features
      ~benchmarks ~dataset merged
  in
  Alcotest.(check int) "same row count" (Array.length single) (Array.length pinned);
  Array.iteri
    (fun i (name, fp, nn, svm, mlp, oracle) ->
      let name', fp', nn', svm', mlp', oracle' = pinned.(i) in
      Alcotest.(check string) "benchmark" name name';
      Alcotest.(check bool) "fp flag" fp fp';
      Alcotest.(check (float 0.0)) "nn speedup" nn nn';
      Alcotest.(check (float 0.0)) "svm speedup" svm svm';
      Alcotest.(check (float 0.0)) "mlp speedup" mlp mlp';
      Alcotest.(check (float 0.0)) "oracle speedup" oracle oracle')
    single

let test_joint_merge_rejects_misaligned () =
  let off = Lazy.force labeled_cache in
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Labeling.merge_joint ~off ~on:(Array.sub off 0 (Array.length off - 1)));
       false
     with Invalid_argument _ -> true)

(* --- Online training = batch training --- *)

let test_online_matches_batch () =
  (* Batch-train with a journal, then replay that journal through the
     online trainer: the final artifact must be bit-identical, regardless
     of intermediate refits along the way. *)
  let cfg = { Config.fast with Config.scale = 0.05; jobs = 2 } in
  let path = Filename.temp_file "unrollml_online" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Sys.remove path;
      let j =
        match Label_store.open_ path with Ok j -> j | Error e -> Alcotest.fail e
      in
      let batch_artifact, batch_report =
        Train.run ~progress:false ~journal:j cfg ~swp:false ~model:Train.Best
      in
      Label_store.close j;
      let online = Train.Online.create ~progress:false cfg ~swp:false ~model:Train.Best in
      let f =
        match Label_store.follow path with Ok f -> f | Error e -> Alcotest.fail e
      in
      let completed = ref 0 in
      let rec drain () =
        match Label_store.follow_next ~timeout:0.05 f with
        | None -> ()
        | Some (key, factor, cycles) ->
          if Train.Online.ingest online ~key ~factor ~cycles then begin
            incr completed;
            (* an intermediate refit must not disturb the final result *)
            if !completed = 3 then ignore (Train.Online.retrain online)
          end;
          drain ()
      in
      drain ();
      Label_store.close_follower f;
      Alcotest.(check int) "all sweeps complete"
        (Train.Online.total_sweeps online)
        (Train.Online.complete_sweeps online);
      Alcotest.(check int) "no unknown records" 0 (Train.Online.unknown_records online);
      match Train.Online.retrain online with
      | Error e -> Alcotest.fail e
      | Ok (a, report) ->
        Alcotest.(check string) "artifact bit-identical to batch"
          (Model_artifact.to_string batch_artifact)
          (Model_artifact.to_string a);
        Alcotest.(check string) "same dataset digest" batch_report.Train.dataset_digest
          report.Train.dataset_digest)

let suite =
  [
    ("features 38", `Quick, test_features_38);
    ("online train = batch train", `Slow, test_online_matches_batch);
    ("predictor persistence", `Slow, test_predictor_persistence_roundtrip);
    ("predictor save rejects", `Quick, test_predictor_save_rejects_unlearned);
    ("machines shift optima", `Quick, test_machines_shift_optima);
    ("features machine relative", `Quick, test_features_machine_relative);
    ("orc machine adaptive", `Quick, test_orc_differs_by_machine);
    ("features table1", `Quick, test_features_paper_table1_present);
    ("features daxpy", `Quick, test_features_daxpy_values);
    ("features unknown trip", `Quick, test_features_unknown_trip);
    ("features recurrence", `Quick, test_features_recurrence);
    ("features finite", `Quick, test_features_all_kernels_finite);
    ("orc rejects calls", `Quick, test_orc_rejects_calls);
    ("orc small body", `Quick, test_orc_small_body_unrolls);
    ("orc trip respected", `Quick, test_orc_trip_respected);
    ("orc power of two", `Quick, test_orc_power_of_two);
    ("orc in range", `Quick, test_orc_in_range);
    ("orc swp fractional", `Quick, test_orc_swp_seeks_fractional_ii);
    ("labeling shapes", `Slow, test_labeling_shapes);
    ("labeling filters", `Slow, test_labeling_filters);
    ("labeling dataset", `Slow, test_labeling_dataset);
    ("labeling deterministic", `Slow, test_labeling_deterministic);
    ("predictor fixed", `Quick, test_predictor_fixed_clamps);
    ("predictor oracle", `Quick, test_predictor_oracle);
    ("predictor nonunrollable", `Quick, test_predictor_nonunrollable_forced);
    ("predictor learned", `Slow, test_predictor_learned_roundtrip);
    ("compiler oracle dominates", `Slow, test_compiler_speedup_oracle_dominates);
    ("compiler compile runs", `Quick, test_compiler_compile_runs);
    ("experiments end to end", `Slow, test_experiments_end_to_end);
    ("config of_env", `Quick, test_config_of_env);
    ("joint encode/decode", `Quick, test_joint_encode_decode_roundtrip);
    ("joint merge layout", `Slow, test_joint_merge_layout);
    ("joint dataset argmin labels", `Slow, test_joint_dataset_labels_are_argmin);
    ("joint folds = factor folds", `Slow, test_joint_folds_match_factor_folds);
    ("predict_joint basics", `Quick, test_predict_joint_basics);
    ("joint pinned rows = single space", `Slow, test_joint_pinned_rows_match_single_space);
    ("joint merge rejects misaligned", `Slow, test_joint_merge_rejects_misaligned);
  ]
