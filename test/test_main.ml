(* Test entry point: one alcotest suite per library. *)

let () =
  Alcotest.run "unroll-ml"
    [
      ("support", Test_support.suite);
      ("linalg", Test_linalg.suite);
      ("ir", Test_ir.suite);
      ("machine", Test_machine.suite);
      ("transform", Test_transform.suite);
      ("interp", Test_interp.suite);
      ("loop_text", Test_loop_text.suite);
      ("sched", Test_sched.suite);
      ("pipeline", Test_pipeline.suite);
      ("sim", Test_sim.suite);
      ("sim_equiv", Test_sim_equiv.suite);
      ("workloads", Test_workloads.suite);
      ("fuzz", Test_fuzz.suite);
      ("fuzz_corpus", Test_fuzz_corpus.suite);
      ("verify", Test_verify.suite);
      ("ml", Test_ml.suite);
      ("core", Test_core.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("extensions", Test_extensions.suite);
    ]
