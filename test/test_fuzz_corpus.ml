(* Corpus replay: every checked-in reproducer documents a bug that is now
   fixed, so its oracle must hold.  The test walks up from the build
   sandbox to the source tree to find corpus/. *)

let find_corpus () =
  let rec up dir =
    let candidate = Filename.concat dir "corpus" in
    if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let required =
  [
    "remainder-trip0.loop";
    "remainder-trip0-dynamic.loop";
    "remainder-trip1.loop";
    "remainder-trip-eq-factor.loop";
    "remainder-trip-factor-minus1.loop";
    "remainder-trip-factor-plus1.loop";
    "remainder-dynamic-trip.loop";
    "recurrence-rotation.loop";
    "alias-store-load.loop";
    (* Shrunk by the first full campaign: Rle forwarded a stored register
       to a later load without noticing a predicated redefinition of that
       register in between (predicated dsts stay un-renamed across unroll
       copies). *)
    "rle-interp-0857.loop";
    "rle-interp-1237.loop";
    "pipeline-interp-swp-rle--0857.loop";
    "pipeline-interp-swp-rle--1237.loop";
  ]

let test_corpus_replays_clean () =
  match find_corpus () with
  | None -> Alcotest.fail "corpus/ directory not found above the test cwd"
  | Some dir -> (
    match Fuzz.Driver.load_corpus dir with
    | Error e -> Alcotest.failf "corpus does not parse: %s" e
    | Ok entries ->
      let names = List.map fst entries in
      List.iter
        (fun f ->
          if not (List.mem f names) then Alcotest.failf "directed reproducer %s missing" f)
        required;
      List.iter
        (fun (file, repro) ->
          match Fuzz.Driver.check_repro repro with
          | [] -> ()
          | (oracle, detail) :: _ -> Alcotest.failf "%s [%s]: %s" file oracle detail)
        entries)

(* Directed translation validation: beyond replaying each reproducer's
   original oracle, the symbolic validator must PROVE every corpus entry
   equivalent at its own (swp, rle) coordinate — a Refuted here is a live
   bug, an Unknown is a normalizer gap worth knowing about either way. *)
let test_corpus_verifies () =
  match find_corpus () with
  | None -> Alcotest.fail "corpus/ directory not found above the test cwd"
  | Some dir -> (
    match Fuzz.Driver.load_corpus dir with
    | Error e -> Alcotest.failf "corpus does not parse: %s" e
    | Ok entries ->
      List.iter
        (fun (file, repro) ->
          let c = repro.Fuzz.Driver.rcase in
          let report =
            Verify.Validate.verify_case
              ~coords:[ (c.Fuzz.Gen.swp, c.Fuzz.Gen.rle) ]
              ~machine:c.Fuzz.Gen.machine c.Fuzz.Gen.loop ~factor:c.Fuzz.Gen.factor
          in
          List.iter
            (fun (check : Verify.Validate.check) ->
              match check.Verify.Validate.verdict with
              | Verify.Validate.Proved -> ()
              | v ->
                Alcotest.failf "%s: %s not proved: %s" file
                  check.Verify.Validate.check_name
                  (Verify.Validate.verdict_to_string v))
            report.Verify.Validate.checks)
        entries)

let suite =
  [
    ("corpus replays clean", `Quick, test_corpus_replays_clean);
    ("corpus proves under translation validation", `Quick, test_corpus_verifies);
  ]
