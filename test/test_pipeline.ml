(* Tests for the pass-pipeline compiler core: the pass list preserves loop
   semantics under the reference interpreter, the content-addressed compile
   cache returns bit-identical results warm vs cold, and the parallel
   labelling sweep matches the sequential one exactly. *)

let machine = Machine.itanium2

(* --- semantics property ------------------------------------------------ *)

(* Executable interpretation and spill-modulo equivalence live in
   Fuzz.Oracle, shared with the fuzzer's differential oracles. *)
let run_exe = Fuzz.Oracle.run_exe
let equivalent_modulo_spills = Fuzz.Oracle.equivalent_modulo_spills

let gen =
  QCheck.Gen.(
    let* seed = 0 -- 60000 in
    let* f = 1 -- 8 in
    let* swp = bool in
    (* exit_prob feeds the executable's *expected*-trip arithmetic, which
       is a performance model, not a semantic one; with_exact_trip zeroes
       it so the compiled schedules carry exact trip counts. *)
    let l =
      Fuzz.Gen.with_exact_trip (Fuzz.Gen.synth_loop ~prefix:"qp" seed) (1 + (seed mod 41))
    in
    return (l, f, swp))

let prop_pipeline_semantics =
  QCheck.Test.make ~count:200
    ~name:"pass pipeline observationally equivalent at factors 1..8"
    (QCheck.make gen)
    (fun (loop, f, swp) ->
      let exe =
        Pipeline.compile ~cache:(Compile_cache.create ()) machine ~swp loop f
      in
      let st_orig = Interp.fresh_state () in
      ignore (Interp.run st_orig loop ~trips:loop.Loop.trip_actual ~phase:0);
      let st_new = Interp.fresh_state () in
      run_exe st_new exe;
      equivalent_modulo_spills exe st_orig st_new loop.Loop.live_out)

let test_pipeline_matches_simulator_compile () =
  (* Simulator.compile is a thin delegate; the pipeline must produce the
     same executable for the same inputs. *)
  List.iter
    (fun (name, maker) ->
      let loop = maker ~name ~trip:96 in
      List.iter
        (fun u ->
          let a = Pipeline.compile ~cache:(Compile_cache.create ()) machine ~swp:false loop u in
          let b = Simulator.compile ~cache:(Compile_cache.create ()) machine ~swp:false loop u in
          if a <> b then Alcotest.failf "%s u=%d: pipeline and simulator differ" name u)
        [ 1; 3; 8 ])
    Kernels.all

(* --- telemetry --------------------------------------------------------- *)

let test_telemetry_records_passes () =
  let sink = Telemetry.create () in
  let loop = Kernels.daxpy ~name:"t_daxpy" ~trip:128 in
  ignore (Pipeline.compile ~cache:(Compile_cache.create ()) ~telemetry:sink machine ~swp:false loop 4);
  List.iter
    (fun pass ->
      Alcotest.(check int) (pass ^ " ran once") 1 (Telemetry.calls sink ~pass))
    Pipeline.pass_names;
  let table = Telemetry.to_table sink in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table renders every pass" true
    (List.for_all (contains table) Pipeline.pass_names)

(* --- compile cache ----------------------------------------------------- *)

let test_cache_warm_equals_cold () =
  let cache = Compile_cache.create () in
  let loop = Kernels.stencil5 ~name:"c_stencil" ~trip:512 in
  let sweep () =
    let rng = Rng.create 7 in
    Measure.sweep ~noise:0.015 ~runs:5 ~max_sim_iters:200 ~cache ~rng ~machine
      ~swp:false loop
  in
  let cold = sweep () in
  let hits_after_cold = Compile_cache.hits cache in
  Alcotest.(check bool) "cold run misses" true (Compile_cache.misses cache > 0);
  let warm = sweep () in
  Alcotest.(check (array int)) "warm sweep identical to cold" cold warm;
  Alcotest.(check bool) "warm run hits" true (Compile_cache.hits cache > hits_after_cold)

let test_cache_key_ignores_name () =
  let a = Kernels.daxpy ~name:"one" ~trip:256 in
  let b = Kernels.daxpy ~name:"two" ~trip:256 in
  Alcotest.(check string) "same content, same key"
    (Compile_cache.key ~machine ~swp:false ~factor:4 a)
    (Compile_cache.key ~machine ~swp:false ~factor:4 b);
  Alcotest.(check bool) "factor participates" true
    (Compile_cache.key ~machine ~swp:false ~factor:4 a
    <> Compile_cache.key ~machine ~swp:false ~factor:5 a);
  Alcotest.(check bool) "swp participates" true
    (Compile_cache.key ~machine ~swp:false ~factor:4 a
    <> Compile_cache.key ~machine ~swp:true ~factor:4 a)

let test_cache_cycles_keyed_by_window () =
  (* The simulation window changes the extrapolated cycle count, so it must
     partition the cycles cache. *)
  let cache = Compile_cache.create () in
  let loop = Kernels.daxpy ~name:"c_win" ~trip:4096 in
  let sweep iters =
    let rng = Rng.create 11 in
    Measure.sweep ~noise:0.0 ~runs:1 ~max_sim_iters:iters ~cache ~rng ~machine
      ~swp:false loop
  in
  let coarse = sweep 50 in
  let fine = sweep 400 in
  let fine' = sweep 400 in
  Alcotest.(check (array int)) "same window is cached" fine fine';
  Alcotest.(check bool) "windows do not collide" true (coarse <> fine)

let test_cache_capacity_zero_disables () =
  let cache = Compile_cache.create ~exe_capacity:0 ~cycles_capacity:0 () in
  let loop = Kernels.daxpy ~name:"c_off" ~trip:64 in
  ignore (Pipeline.compile ~cache machine ~swp:false loop 2);
  ignore (Pipeline.compile ~cache machine ~swp:false loop 2);
  Alcotest.(check int) "never hits" 0 (Compile_cache.hits cache)

(* --- parallel labelling ------------------------------------------------ *)

let small_config = { Config.fast with Config.scale = 0.04; runs = 3; max_sim_iters = 120 }

let small_benchmarks () =
  Suite.full ~scale:small_config.Config.scale ~seed:small_config.Config.seed
  |> List.filteri (fun i _ -> i < 6)

let check_labels_equal l1 l2 =
  Alcotest.(check int) "same loop count" (Array.length l1) (Array.length l2);
  Array.iter2
    (fun (a : Labeling.labeled) (b : Labeling.labeled) ->
      Alcotest.(check string) "bench order" a.Labeling.bench b.Labeling.bench;
      Alcotest.(check string) "loop order" a.Labeling.loop.Loop.name b.Labeling.loop.Loop.name;
      Alcotest.(check (array int)) "cycles bit-identical" a.Labeling.cycles b.Labeling.cycles)
    l1 l2

let test_parallel_labels_identical () =
  let benchmarks = small_benchmarks () in
  let seq = Labeling.collect ~jobs:1 small_config ~swp:false benchmarks in
  let par = Labeling.collect ~jobs:4 small_config ~swp:false benchmarks in
  check_labels_equal seq par

let test_parallel_loocv_identical () =
  let pairs =
    Array.init 40 (fun i ->
        let x = float_of_int (i mod 7) and y = float_of_int (i mod 3) in
        ([| x; y; x +. y |], i mod 2))
  in
  let train = Knn.train ~radius:0.5 ~n_classes:2 in
  let predict = Knn.predict in
  let seq = Loocv.run ~jobs:1 ~train ~predict pairs in
  let par = Loocv.run ~jobs:4 ~train ~predict pairs in
  Alcotest.(check (array int)) "LOOCV folds identical" seq par

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pipeline_semantics;
    ("pipeline matches Simulator.compile", `Quick, test_pipeline_matches_simulator_compile);
    ("telemetry records passes", `Quick, test_telemetry_records_passes);
    ("warm cache equals cold sweep", `Quick, test_cache_warm_equals_cold);
    ("cache key ignores loop name", `Quick, test_cache_key_ignores_name);
    ("cycles cache keyed by window", `Quick, test_cache_cycles_keyed_by_window);
    ("capacity 0 disables the cache", `Quick, test_cache_capacity_zero_disables);
    ("jobs=4 labels identical to jobs=1", `Slow, test_parallel_labels_identical);
    ("jobs=4 LOOCV identical to jobs=1", `Quick, test_parallel_loocv_identical);
  ]
