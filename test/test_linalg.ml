(* Tests for dense linear algebra: vectors, matrices, solvers, eigen. *)

let check_float = Alcotest.(check (float 1e-6))

let rng = Rng.create 20250705

let random_vec n = Array.init n (fun _ -> Rng.gaussian rng)

let random_spd n =
  (* BᵀB + I is symmetric positive definite. *)
  let b = Mat.init n n (fun _ _ -> Rng.gaussian rng) in
  let a = Mat.mul (Mat.transpose b) b in
  Mat.add_diagonal a 1.0;
  a

(* --- Vec --- *)

let test_vec_dot () = check_float "dot" 32.0 (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

let test_vec_add_sub () =
  Alcotest.(check (array (float 1e-9))) "add" [| 5.; 7. |] (Vec.add [| 1.; 2. |] [| 4.; 5. |]);
  Alcotest.(check (array (float 1e-9))) "sub" [| -3.; -3. |] (Vec.sub [| 1.; 2. |] [| 4.; 5. |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy 2.0 [| 3.0; 4.0 |] y;
  Alcotest.(check (array (float 1e-9))) "axpy" [| 7.0; 9.0 |] y

let test_vec_dist () =
  check_float "dist" 5.0 (Vec.dist [| 0.; 0. |] [| 3.; 4. |]);
  check_float "dist2" 25.0 (Vec.dist2 [| 0.; 0. |] [| 3.; 4. |])

let test_vec_norm () = check_float "norm" 5.0 (Vec.norm2 [| 3.0; 4.0 |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec: dimension mismatch") (fun () ->
      ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

let test_vec_scale () =
  Alcotest.(check (array (float 1e-9))) "scale" [| 2.; 4. |] (Vec.scale 2.0 [| 1.; 2. |])

(* --- Mat --- *)

let test_mat_identity_mul () =
  let a = Mat.init 4 4 (fun i j -> float_of_int ((i * 4) + j)) in
  Alcotest.(check bool) "I*A = A" true (Mat.equal (Mat.mul (Mat.identity 4) a) a);
  Alcotest.(check bool) "A*I = A" true (Mat.equal (Mat.mul a (Mat.identity 4)) a)

let test_mat_mul_known () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_mat_transpose () =
  let a = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  Alcotest.(check int) "cols" 2 (Mat.cols t);
  check_float "t21" 6.0 (Mat.get t 2 1)

let test_mat_mul_vec () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-9))) "Ax" [| 5.; 11. |] (Mat.mul_vec a [| 1.; 2. |])

let test_mat_add_diagonal () =
  let a = Mat.create 3 3 in
  Mat.add_diagonal a 2.5;
  check_float "diag" 2.5 (Mat.get a 1 1);
  check_float "off-diag" 0.0 (Mat.get a 0 1)

let test_mat_row_col () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-9))) "row" [| 3.; 4. |] (Mat.row a 1);
  Alcotest.(check (array (float 1e-9))) "col" [| 2.; 4. |] (Mat.col a 1)

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged") (fun () ->
      ignore (Mat.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

(* --- Solve --- *)

let test_lu_solves () =
  for n = 1 to 8 do
    let a = random_spd n in
    let x = random_vec n in
    let b = Mat.mul_vec a x in
    let x' = Solve.solve a b in
    Alcotest.(check bool)
      (Printf.sprintf "lu n=%d" n)
      true
      (Vec.equal ~eps:1e-6 x x')
  done

let test_lu_needs_pivoting () =
  (* Zero top-left pivot forces a row swap. *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Solve.solve a [| 3.0; 7.0 |] in
  Alcotest.(check (array (float 1e-9))) "swap solve" [| 7.0; 3.0 |] x

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Solve.Singular (fun () -> ignore (Solve.lu a))

let test_cholesky_solves () =
  for n = 1 to 8 do
    let a = random_spd n in
    let x = random_vec n in
    let b = Mat.mul_vec a x in
    let x' = Solve.cholesky_solve (Solve.cholesky a) b in
    Alcotest.(check bool)
      (Printf.sprintf "chol n=%d" n)
      true
      (Vec.equal ~eps:1e-6 x x')
  done

let test_cholesky_inverse () =
  let n = 6 in
  let a = random_spd n in
  let inv = Solve.cholesky_inverse (Solve.cholesky a) in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Mat.equal ~eps:1e-6 (Mat.mul a inv) (Mat.identity n))

let test_cholesky_rejects_indefinite () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  (* eigenvalues 3 and -1: not PD *)
  Alcotest.check_raises "indefinite" Solve.Singular (fun () -> ignore (Solve.cholesky a))

let test_cholesky_log_det () =
  let a = Mat.of_rows [| [| 4.; 0. |]; [| 0.; 9. |] |] in
  check_float "log det" (log 36.0) (Solve.cholesky_log_det (Solve.cholesky a))

let test_inverse_general () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let inv = Solve.inverse a in
  Alcotest.(check bool) "general inverse" true
    (Mat.equal ~eps:1e-9 (Mat.mul a inv) (Mat.identity 2))

(* --- Solve.Chol: growable factorisation --- *)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v) a b

let bordering_row a k =
  (* Row k of [a] truncated to its leading k+1 entries: the bordering row
     of the (k+1)×(k+1) leading principal submatrix, diagonal last. *)
  Array.init (k + 1) (fun j -> Mat.get a k j)

let test_chol_grow_from_empty () =
  (* Every prefix of an append sequence starting from the empty
     factorisation must solve bit-identically to the batch path. *)
  let n = 8 in
  let a = random_spd n in
  let c = Solve.Chol.create ~capacity:2 () in
  for k = 0 to n - 1 do
    Solve.Chol.append c (bordering_row a k);
    let m = k + 1 in
    let lead = Mat.init m m (fun i j -> Mat.get a i j) in
    let b = Array.init m (fun i -> float_of_int (i + 1)) in
    Alcotest.(check bool)
      (Printf.sprintf "prefix %d solve bits" m)
      true
      (bits_equal (Solve.Chol.solve c b) (Solve.cholesky_solve (Solve.cholesky lead) b))
  done

let test_chol_of_matrix_matches_batch () =
  let n = 7 in
  let a = random_spd n in
  let c = Solve.Chol.of_matrix a in
  let b = random_vec n in
  Alcotest.(check int) "size" n (Solve.Chol.size c);
  Alcotest.(check bool) "solve bits" true
    (bits_equal (Solve.Chol.solve c b) (Solve.cholesky_solve (Solve.cholesky a) b));
  Alcotest.(check bool) "inverse diagonal bits" true
    (bits_equal
       (Solve.Chol.inverse_diagonal c)
       (Solve.cholesky_inverse_diagonal (Solve.cholesky a)));
  Alcotest.(check bool) "log det bits" true
    (Int64.bits_of_float (Solve.Chol.log_det c)
    = Int64.bits_of_float (Solve.cholesky_log_det (Solve.cholesky a)))

let test_chol_remove_last_roundtrip () =
  let n = 6 in
  let a = random_spd (n + 1) in
  let lead = Mat.init n n (fun i j -> Mat.get a i j) in
  let c = Solve.Chol.of_matrix lead in
  let b = random_vec n in
  let before = Solve.Chol.solve c b in
  Solve.Chol.append c (bordering_row a n);
  Solve.Chol.remove_last c;
  Alcotest.(check int) "size restored" n (Solve.Chol.size c);
  Alcotest.(check bool) "solve bits restored" true (bits_equal before (Solve.Chol.solve c b))

let test_chol_singular_append_leaves_unchanged () =
  let a = random_spd 3 in
  let c = Solve.Chol.of_matrix a in
  let b = random_vec 3 in
  let before = Solve.Chol.solve c b in
  (* Bordering row duplicating row 2 of A makes the extended matrix
     rank-deficient: the new pivot underflows. *)
  let dup = [| Mat.get a 2 0; Mat.get a 2 1; Mat.get a 2 2; Mat.get a 2 2 |] in
  Alcotest.check_raises "singular" Solve.Singular (fun () -> Solve.Chol.append c dup);
  Alcotest.(check int) "size unchanged" 3 (Solve.Chol.size c);
  Alcotest.(check bool) "solve unchanged" true (bits_equal before (Solve.Chol.solve c b))

let test_chol_factor_survives_append () =
  (* A factor snapshot keeps answering for its own size even after the
     growable state has moved on — the property [Lssvm.system_train]
     relies on between retrain and append. *)
  let n = 5 in
  let a = random_spd (n + 1) in
  let lead = Mat.init n n (fun i j -> Mat.get a i j) in
  let c = Solve.Chol.of_matrix lead in
  let snap = Solve.Chol.factor c in
  let b = random_vec n in
  let before = Solve.cholesky_solve snap b in
  Solve.Chol.append c (bordering_row a n);
  Alcotest.(check bool) "snapshot solve stable" true
    (bits_equal before (Solve.cholesky_solve snap b));
  Alcotest.(check bool) "snapshot = batch of lead" true
    (bits_equal before (Solve.cholesky_solve (Solve.cholesky lead) b))

(* --- Eigen --- *)

let test_eigen_diagonal () =
  let a = Mat.of_rows [| [| 3.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 2. |] |] in
  let vals, _ = Eigen.symmetric a in
  Alcotest.(check (array (float 1e-9))) "sorted eigenvalues" [| 3.; 2.; 1. |] vals

let test_eigen_residual () =
  let n = 6 in
  let a = random_spd n in
  let vals, vecs = Eigen.symmetric a in
  for k = 0 to n - 1 do
    let v = Array.init n (fun i -> Mat.get vecs i k) in
    let av = Mat.mul_vec a v in
    let lv = Vec.scale vals.(k) v in
    Alcotest.(check bool)
      (Printf.sprintf "Av = lv (k=%d)" k)
      true
      (Vec.equal ~eps:1e-6 av lv)
  done

let test_eigen_orthonormal () =
  let n = 5 in
  let a = random_spd n in
  let _, vecs = Eigen.symmetric a in
  let vtv = Mat.mul (Mat.transpose vecs) vecs in
  Alcotest.(check bool) "VᵀV = I" true (Mat.equal ~eps:1e-6 vtv (Mat.identity n))

let test_eigen_known_2x2 () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let vals, _ = Eigen.symmetric a in
  check_float "lambda1" 3.0 vals.(0);
  check_float "lambda2" 1.0 vals.(1)

let test_top_eigenvectors () =
  let a = Mat.of_rows [| [| 5.; 0. |]; [| 0.; 1. |] |] in
  let top = Eigen.top_eigenvectors a 1 in
  Alcotest.(check int) "one vector" 1 (Array.length top);
  Alcotest.(check bool) "aligned with e1" true (Float.abs top.(0).(0) > 0.99)

(* --- Blocked kernels: Mat.gram / Mat.pairwise_dist2 --- *)

let test_row_norms2 () =
  let m = Mat.of_rows [| [| 3.0; 4.0 |]; [| 1.0; 2.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "norms" [| 25.0; 5.0 |] (Mat.row_norms2 m)

let test_gram_multiblock () =
  (* 150 rows spans multiple 64-row tiles and several worker domains. *)
  let n = 150 in
  let m = Mat.init n 3 (fun _ _ -> Rng.gaussian rng) in
  let g1 = Mat.gram ~jobs:1 m in
  let g4 = Mat.gram ~jobs:4 m in
  Alcotest.(check bool) "bit-identical across jobs" true (Mat.equal ~eps:0.0 g1 g4);
  List.iter
    (fun (i, j) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "entry %d,%d" i j)
        (Vec.dot (Mat.row m i) (Mat.row m j))
        (Mat.get g1 i j))
    [ (0, 0); (0, 149); (63, 64); (100, 17); (149, 149) ]

let test_pairwise_dist2_multiblock () =
  let n = 150 in
  let m = Mat.init n 3 (fun _ _ -> Rng.gaussian rng) in
  let d1 = Mat.pairwise_dist2 ~jobs:1 m in
  let d4 = Mat.pairwise_dist2 ~jobs:4 m in
  Alcotest.(check bool) "bit-identical across jobs" true (Mat.equal ~eps:0.0 d1 d4);
  List.iter
    (fun (i, j) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "entry %d,%d" i j)
        (Vec.dist2 (Mat.row m i) (Mat.row m j))
        (Mat.get d1 i j))
    [ (0, 0); (0, 149); (63, 64); (100, 17); (149, 149) ]

(* --- QCheck --- *)

let small_spd_gen =
  QCheck.Gen.(
    let* n = 1 -- 6 in
    let* entries = array_size (return (n * n)) (float_bound_exclusive 2.0) in
    let b = Mat.init n n (fun i j -> entries.((i * n) + j) -. 1.0) in
    let a = Mat.mul (Mat.transpose b) b in
    Mat.add_diagonal a 1.0;
    return a)

let prop_cholesky_vs_lu =
  QCheck.Test.make ~count:100 ~name:"cholesky solve = lu solve"
    (QCheck.make small_spd_gen)
    (fun a ->
      let n = Mat.rows a in
      let b = Array.init n (fun i -> float_of_int (i + 1)) in
      let x1 = Solve.cholesky_solve (Solve.cholesky a) b in
      let x2 = Solve.solve a b in
      Vec.equal ~eps:1e-6 x1 x2)

let random_mat_gen =
  QCheck.Gen.(
    let* n = 1 -- 12 in
    let* d = 1 -- 7 in
    let* entries = array_size (return (n * d)) (float_bound_exclusive 4.0) in
    return (Mat.init n d (fun i j -> entries.((i * d) + j) -. 2.0)))

let prop_gram_blocked_matches_scalar =
  QCheck.Test.make ~count:100 ~name:"blocked gram = row dots, jobs-invariant"
    (QCheck.make random_mat_gen)
    (fun m ->
      let n = Mat.rows m in
      let g1 = Mat.gram ~jobs:1 m in
      let g4 = Mat.gram ~jobs:4 m in
      let ok = ref (Mat.equal ~eps:0.0 g1 g4) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Float.abs (Mat.get g1 i j -. Vec.dot (Mat.row m i) (Mat.row m j)) > 1e-9 then
            ok := false
        done
      done;
      !ok)

let prop_pairwise_dist2_matches_scalar =
  QCheck.Test.make ~count:100 ~name:"blocked pairwise dist2 = Vec.dist2, jobs-invariant"
    (QCheck.make random_mat_gen)
    (fun m ->
      let n = Mat.rows m in
      let d1 = Mat.pairwise_dist2 ~jobs:1 m in
      let d4 = Mat.pairwise_dist2 ~jobs:4 m in
      let ok = ref (Mat.equal ~eps:0.0 d1 d4) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Float.abs (Mat.get d1 i j -. Vec.dist2 (Mat.row m i) (Mat.row m j)) > 1e-9 then
            ok := false
        done
      done;
      !ok)

let spd_pair_gen =
  (* An SPD matrix of size n+1 (n in 1..6) together with its leading n×n
     principal submatrix — the before/after of one append. *)
  QCheck.Gen.(
    let* n = 1 -- 6 in
    let m = n + 1 in
    let* entries = array_size (return (m * m)) (float_bound_exclusive 2.0) in
    let b = Mat.init m m (fun i j -> entries.((i * m) + j) -. 1.0) in
    let a = Mat.mul (Mat.transpose b) b in
    Mat.add_diagonal a 1.0;
    return (Mat.init n n (fun i j -> Mat.get a i j), a))

let prop_chol_append_vs_batch =
  (* The .mli contract: update (cholesky A) row ≡ cholesky (append A row),
     bit for bit on the solve results Lssvm consumes. *)
  QCheck.Test.make ~count:200 ~name:"chol append = batch cholesky, bitwise"
    (QCheck.make spd_pair_gen)
    (fun (lead, full) ->
      let m = Mat.rows full in
      let c = Solve.Chol.of_matrix lead in
      Solve.Chol.append c (bordering_row full (m - 1));
      let batch = Solve.cholesky full in
      let b = Array.init m (fun i -> float_of_int (i + 1)) in
      bits_equal (Solve.Chol.solve c b) (Solve.cholesky_solve batch b)
      && bits_equal (Solve.Chol.inverse_diagonal c) (Solve.cholesky_inverse_diagonal batch)
      && Int64.bits_of_float (Solve.Chol.log_det c)
         = Int64.bits_of_float (Solve.cholesky_log_det batch))

let prop_eigen_trace =
  QCheck.Test.make ~count:100 ~name:"eigenvalues sum to trace"
    (QCheck.make small_spd_gen)
    (fun a ->
      let n = Mat.rows a in
      let vals, _ = Eigen.symmetric a in
      let trace = ref 0.0 in
      for i = 0 to n - 1 do
        trace := !trace +. Mat.get a i i
      done;
      Float.abs (Array.fold_left ( +. ) 0.0 vals -. !trace) < 1e-6)

let suite =
  [
    ("vec dot", `Quick, test_vec_dot);
    ("vec add/sub", `Quick, test_vec_add_sub);
    ("vec axpy", `Quick, test_vec_axpy);
    ("vec dist", `Quick, test_vec_dist);
    ("vec norm", `Quick, test_vec_norm);
    ("vec dim mismatch", `Quick, test_vec_dim_mismatch);
    ("vec scale", `Quick, test_vec_scale);
    ("mat identity mul", `Quick, test_mat_identity_mul);
    ("mat mul known", `Quick, test_mat_mul_known);
    ("mat transpose", `Quick, test_mat_transpose);
    ("mat mul_vec", `Quick, test_mat_mul_vec);
    ("mat add_diagonal", `Quick, test_mat_add_diagonal);
    ("mat row/col", `Quick, test_mat_row_col);
    ("mat ragged", `Quick, test_mat_ragged);
    ("lu solves", `Quick, test_lu_solves);
    ("lu pivoting", `Quick, test_lu_needs_pivoting);
    ("lu singular", `Quick, test_lu_singular);
    ("cholesky solves", `Quick, test_cholesky_solves);
    ("cholesky inverse", `Quick, test_cholesky_inverse);
    ("cholesky indefinite", `Quick, test_cholesky_rejects_indefinite);
    ("cholesky log det", `Quick, test_cholesky_log_det);
    ("general inverse", `Quick, test_inverse_general);
    ("eigen diagonal", `Quick, test_eigen_diagonal);
    ("eigen residual", `Quick, test_eigen_residual);
    ("eigen orthonormal", `Quick, test_eigen_orthonormal);
    ("eigen 2x2", `Quick, test_eigen_known_2x2);
    ("top eigenvectors", `Quick, test_top_eigenvectors);
    ("chol grow from empty", `Quick, test_chol_grow_from_empty);
    ("chol of_matrix = batch", `Quick, test_chol_of_matrix_matches_batch);
    ("chol remove_last roundtrip", `Quick, test_chol_remove_last_roundtrip);
    ("chol singular append unchanged", `Quick, test_chol_singular_append_leaves_unchanged);
    ("chol factor survives append", `Quick, test_chol_factor_survives_append);
    ("row norms2", `Quick, test_row_norms2);
    ("gram multiblock", `Quick, test_gram_multiblock);
    ("pairwise dist2 multiblock", `Quick, test_pairwise_dist2_multiblock);
    QCheck_alcotest.to_alcotest prop_gram_blocked_matches_scalar;
    QCheck_alcotest.to_alcotest prop_pairwise_dist2_matches_scalar;
    QCheck_alcotest.to_alcotest prop_cholesky_vs_lu;
    QCheck_alcotest.to_alcotest prop_chol_append_vs_batch;
    QCheck_alcotest.to_alcotest prop_eigen_trace;
  ]
