(* lib/serve: wire-codec round-trip and damage properties, and the
   concurrent prediction server — multi-client bit-identity, explicit
   backpressure, hot reload under load (including a corrupt artifact), and
   graceful drain with zero dropped responses. *)

let fixture_config = { Config.fast with Config.scale = 0.05; jobs = 2 }

(* `dune runtest` runs from _build/default/test; `dune exec test/test_main.exe`
   from the project root. *)
let fixture name =
  let local = Filename.concat "fixtures" name in
  if Sys.file_exists local then local else Filename.concat "test/fixtures" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- wire codec properties ------------------------------------------------ *)

let gen_request seed =
  if seed mod 4 = 0 then
    Wire.Control
      (match seed mod 3 with
      | 0 -> "ping"
      | 1 -> "reload some path with spaces"
      | _ -> "stats")
  else Wire.Predict (Fuzz_gen.synth_loop seed)

let gen_response seed =
  match seed mod 4 with
  | 0 -> Wire.Factor (1 + (seed mod Unroll.max_factor))
  | 1 -> Wire.Busy
  | 2 -> Wire.Okay (String.concat "\n" [ "stats"; string_of_int seed; "" ])
  | _ -> Wire.Failure (Printf.sprintf "error %d" seed)

let prop_request_roundtrip =
  QCheck.Test.make ~count:40 ~name:"wire request roundtrips through a frame"
    QCheck.small_int (fun seed ->
      let r = gen_request seed in
      let payload = Wire.request_payload r in
      let frame = Wire.encode payload in
      match Wire.decode frame with
      | Wire.Payload (p, consumed) ->
        consumed = String.length frame
        && p = payload
        && Wire.parse_request p = Ok r
      | _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~count:40 ~name:"wire response roundtrips through a frame"
    QCheck.small_int (fun seed ->
      let r = gen_response seed in
      let frame = Wire.encode (Wire.response_payload r) in
      match Wire.decode frame with
      | Wire.Payload (p, _) -> Wire.parse_response p = Ok r
      | _ -> false)

let prop_torn_frame_incomplete =
  QCheck.Test.make ~count:25 ~name:"every proper frame prefix decodes Incomplete"
    QCheck.small_int (fun seed ->
      let frame = Wire.encode (Wire.request_payload (gen_request seed)) in
      let n = String.length frame in
      (* The interesting cut points: inside the length prefix, inside the
         digest, and a few spots inside the payload. *)
      let cuts = [ 0; 1; 3; 4; 12; 19; 20; n / 2; n - 1 ] in
      List.for_all
        (fun k ->
          k >= n
          || Wire.decode (String.sub frame 0 k) = Wire.Incomplete)
        cuts)

let prop_interior_corruption_rejected =
  QCheck.Test.make ~count:25
    ~name:"flipping any byte after the length prefix is Corrupt"
    QCheck.(pair small_int small_int)
    (fun (seed, at) ->
      let frame = Wire.encode (Wire.request_payload (gen_request seed)) in
      let n = String.length frame in
      (* Positions 0..3 are the length prefix (a flip there may just look
         Incomplete); everything after is covered by the digest. *)
      let pos = 4 + (at mod (n - 4)) in
      let b = Bytes.of_string frame in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x41));
      match Wire.decode (Bytes.to_string b) with
      | Wire.Corrupt _ -> true
      | Wire.Payload _ | Wire.Incomplete -> false)

let test_frame_stream () =
  let r1 = gen_request 1 and r2 = gen_request 2 in
  let buf = Wire.encode (Wire.request_payload r1) ^ Wire.encode (Wire.request_payload r2) in
  match Wire.decode buf with
  | Wire.Payload (p1, c1) -> (
    Alcotest.(check bool) "first frame parses" true (Wire.parse_request p1 = Ok r1);
    match Wire.decode ~pos:c1 buf with
    | Wire.Payload (p2, c2) ->
      Alcotest.(check bool) "second frame parses" true (Wire.parse_request p2 = Ok r2);
      Alcotest.(check int) "stream fully consumed" (String.length buf) (c1 + c2)
    | _ -> Alcotest.fail "second frame did not decode")
  | _ -> Alcotest.fail "first frame did not decode"

let test_oversized_length_rejected () =
  let b = Bytes.make 24 '\x00' in
  Bytes.set b 0 '\x7f';
  match Wire.decode (Bytes.to_string b) with
  | Wire.Corrupt msg ->
    Alcotest.(check bool) ("names the cap: " ^ msg) true (contains ~sub:"cap" msg)
  | _ -> Alcotest.fail "absurd length prefix accepted"

(* --- server harness ------------------------------------------------------- *)

let default_test_opts =
  {
    Serve.default_opts with
    Serve.port = 0;
    jobs = 2;
    batch_window = 0.001;
    batch_cap = 16;
    queue_cap = 256;
    drain_timeout = 10.0;
  }

let start_server ?(opts = default_test_opts) ?(artifact = "golden_nn.artifact") () =
  match
    Serve.listen ~opts ~telemetry:(Telemetry.create ()) fixture_config
      ~artifact:(fixture artifact)
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let th = Thread.create Serve.run t in
    (t, th, Printf.sprintf "127.0.0.1:%d" (Serve.port t))

let shutdown_server th addr =
  (match Serve_client.connect addr with
  | Ok c ->
    (match Serve_client.control c "shutdown" with
    | Ok (Wire.Okay _) -> ()
    | Ok r -> Alcotest.fail ("shutdown response: " ^ Wire.response_payload r)
    | Error e -> Alcotest.fail ("shutdown: " ^ e));
    Serve_client.close c
  | Error e -> Alcotest.fail ("shutdown connect: " ^ e));
  Thread.join th

let connect_exn addr =
  match Serve_client.connect addr with Ok c -> c | Error e -> Alcotest.fail e

let stats_exn addr =
  let c = connect_exn addr in
  Fun.protect
    ~finally:(fun () -> Serve_client.close c)
    (fun () ->
      match Serve_client.control c "stats" with
      | Ok (Wire.Okay text) ->
        List.filter_map
          (fun line ->
            match String.split_on_char ' ' line with
            | [ k; v ] -> Option.map (fun n -> (k, n)) (int_of_string_opt v)
            | _ -> None)
          (String.split_on_char '\n' text)
      | Ok r -> Alcotest.fail ("stats response: " ^ Wire.response_payload r)
      | Error e -> Alcotest.fail ("stats: " ^ e))

let stat assoc key = Option.value ~default:0 (List.assoc_opt key assoc)

let local_expected artifact loops =
  let a =
    match Model_artifact.load (fixture artifact) with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  let s =
    match Predict_service.create fixture_config a with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Predict_service.predict_batch s loops

let kernel_loops () = List.map (fun (name, maker) -> maker ~name ~trip:256) Kernels.all

(* --- multi-client bit-identity -------------------------------------------- *)

let test_multi_client_bit_identical () =
  let loops = kernel_loops () in
  let expected = local_expected "golden_nn.artifact" loops in
  let _t, th, addr = start_server () in
  let n_clients = 6 in
  let failures = Array.make n_clients "" in
  let threads =
    List.init n_clients (fun k ->
        Thread.create
          (fun () ->
            match Serve_client.connect addr with
            | Error e -> failures.(k) <- e
            | Ok c ->
              Fun.protect
                ~finally:(fun () -> Serve_client.close c)
                (fun () ->
                  (* Pipelined: responses must come back in request order. *)
                  match Serve_client.predict_all ~depth:8 c loops with
                  | Error e -> failures.(k) <- e
                  | Ok responses ->
                    Array.iteri
                      (fun i r ->
                        if r <> Wire.Factor expected.(i) && failures.(k) = "" then
                          failures.(k) <-
                            Printf.sprintf "client %d: loop %d mismatched" k i)
                      responses))
          ())
  in
  List.iter Thread.join threads;
  Array.iter (fun f -> if f <> "" then Alcotest.fail f) failures;
  let stats = stats_exn addr in
  Alcotest.(check int)
    "every request was answered from a batch"
    (n_clients * List.length loops)
    (stat stats "batched-loops");
  Alcotest.(check bool) "nothing was shed" true (stat stats "shed" = 0);
  Alcotest.(check bool) "no responses were dropped" true
    (stat stats "responses-dropped" = 0);
  shutdown_server th addr

(* --- backpressure ---------------------------------------------------------- *)

let test_backpressure_sheds_explicitly () =
  (* A deliberately slow, tiny server: batches of 1 with a long window and a
     2-deep queue, hammered with a deep pipeline — admission control must
     answer Busy, never hang or drop. *)
  let opts =
    {
      default_test_opts with
      Serve.batch_cap = 1;
      batch_window = 0.01;
      queue_cap = 2;
    }
  in
  let loops = kernel_loops () in
  let expected = local_expected "golden_nn.artifact" loops in
  let _t, th, addr = start_server ~opts () in
  let n = 60 in
  let c = connect_exn addr in
  let responses =
    Fun.protect
      ~finally:(fun () -> Serve_client.close c)
      (fun () ->
        match
          Serve_client.predict_all ~depth:n c
            (List.init n (fun i -> List.nth loops (i mod List.length loops)))
        with
        | Ok rs -> rs
        | Error e -> Alcotest.fail e)
  in
  Alcotest.(check int) "every request got a response" n (Array.length responses);
  let factors = ref 0 and busy = ref 0 in
  Array.iteri
    (fun i r ->
      match r with
      | Wire.Factor f ->
        incr factors;
        Alcotest.(check int)
          (Printf.sprintf "response %d bit-identical" i)
          expected.(i mod List.length loops)
          f
      | Wire.Busy -> incr busy
      | r -> Alcotest.fail ("unexpected response: " ^ Wire.response_payload r))
    responses;
  Alcotest.(check bool) "some requests were shed" true (!busy > 0);
  Alcotest.(check bool) "some requests were served" true (!factors > 0);
  let stats = stats_exn addr in
  Alcotest.(check int) "server counted the sheds" !busy (stat stats "shed");
  shutdown_server th addr

(* --- hot reload under load ------------------------------------------------- *)

let test_hot_reload_under_load () =
  let loops = Array.of_list (kernel_loops ()) in
  let expected_nn = local_expected "golden_nn.artifact" (Array.to_list loops) in
  let expected_svm = local_expected "golden_svm.artifact" (Array.to_list loops) in
  let _t, th, addr = start_server ~artifact:"golden_nn.artifact" () in
  let n_clients = 4 and rounds = 12 in
  let failures = Array.make n_clients "" in
  let answered = Array.make n_clients 0 in
  let threads =
    List.init n_clients (fun k ->
        Thread.create
          (fun () ->
            match Serve_client.connect addr with
            | Error e -> failures.(k) <- e
            | Ok c ->
              Fun.protect
                ~finally:(fun () -> Serve_client.close c)
                (fun () ->
                  try
                    for r = 0 to rounds - 1 do
                      Array.iteri
                        (fun i loop ->
                          match Serve_client.predict c loop with
                          | Ok (Wire.Factor f) ->
                            answered.(k) <- answered.(k) + 1;
                            (* During the swap either model may answer, but
                               never anything else. *)
                            if f <> expected_nn.(i) && f <> expected_svm.(i) then begin
                              failures.(k) <-
                                Printf.sprintf "round %d loop %d: factor %d from \
                                                neither model" r i f;
                              raise Exit
                            end
                          | Ok resp ->
                            failures.(k) <-
                              "unexpected response: " ^ Wire.response_payload resp;
                            raise Exit
                          | Error e ->
                            failures.(k) <- e;
                            raise Exit)
                        loops
                    done
                  with Exit -> ()))
          ())
  in
  (* Mid-load: swap to the SVM artifact, then try to swap to a corrupt one
     (which must be rejected while the SVM keeps serving). *)
  Thread.delay 0.05;
  let ctl = connect_exn addr in
  (match Serve_client.control ctl ("reload " ^ fixture "golden_svm.artifact") with
  | Ok (Wire.Okay msg) ->
    Alcotest.(check bool) ("reload names the model: " ^ msg) true (contains ~sub:"svm" msg)
  | Ok r -> Alcotest.fail ("reload response: " ^ Wire.response_payload r)
  | Error e -> Alcotest.fail ("reload: " ^ e));
  let corrupt_path = Filename.temp_file "unrollml_serve" ".artifact" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists corrupt_path then Sys.remove corrupt_path)
    (fun () ->
      let text = read_file (fixture "golden_nn.artifact") in
      write_file corrupt_path (String.sub text 0 (String.length text / 2));
      (match Serve_client.control ctl ("reload " ^ corrupt_path) with
      | Ok (Wire.Failure msg) ->
        Alcotest.(check bool)
          ("rejection names the reload: " ^ msg)
          true
          (contains ~sub:"reload rejected" msg)
      | Ok r -> Alcotest.fail ("corrupt reload accepted: " ^ Wire.response_payload r)
      | Error e -> Alcotest.fail ("corrupt reload: " ^ e));
      List.iter Thread.join threads;
      Array.iter (fun f -> if f <> "" then Alcotest.fail f) failures;
      (* Zero dropped: every synchronous request of every client came back. *)
      Array.iteri
        (fun k n ->
          Alcotest.(check int)
            (Printf.sprintf "client %d got every response" k)
            (rounds * Array.length loops)
            n)
        answered;
      (* Steady state after the swap: the SVM answers, bit-identically. *)
      Array.iteri
        (fun i loop ->
          match Serve_client.predict ctl loop with
          | Ok (Wire.Factor f) ->
            Alcotest.(check int) (Printf.sprintf "post-reload loop %d" i) expected_svm.(i) f
          | Ok r -> Alcotest.fail ("post-reload: " ^ Wire.response_payload r)
          | Error e -> Alcotest.fail ("post-reload: " ^ e))
        loops;
      let stats = stats_exn addr in
      Alcotest.(check int) "one reload landed" 1 (stat stats "reloads");
      Alcotest.(check int) "one reload was rejected" 1 (stat stats "reload-rejected");
      Alcotest.(check int) "no responses dropped across the swap" 0
        (stat stats "responses-dropped"));
  Serve_client.close ctl;
  shutdown_server th addr

(* --- shadow evaluation ------------------------------------------------------ *)

let stats_raw_exn addr =
  let c = connect_exn addr in
  Fun.protect
    ~finally:(fun () -> Serve_client.close c)
    (fun () ->
      match Serve_client.control c "stats" with
      | Ok (Wire.Okay text) -> text
      | Ok r -> Alcotest.fail ("stats response: " ^ Wire.response_payload r)
      | Error e -> Alcotest.fail ("stats: " ^ e))

let reload_expect_shadow c path =
  match Serve_client.control c ("reload " ^ path) with
  | Ok (Wire.Okay msg) ->
    Alcotest.(check bool) ("reload enters shadow: " ^ msg) true (contains ~sub:"shadowing" msg)
  | Ok r -> Alcotest.fail ("reload response: " ^ Wire.response_payload r)
  | Error e -> Alcotest.fail ("reload: " ^ e)

let drive_round c loops expected =
  List.iteri
    (fun i loop ->
      match Serve_client.predict c loop with
      | Ok (Wire.Factor f) ->
        Alcotest.(check int) (Printf.sprintf "loop %d served by live model" i) expected.(i) f
      | Ok r -> Alcotest.fail ("predict: " ^ Wire.response_payload r)
      | Error e -> Alcotest.fail ("predict: " ^ e))
    loops

(* Pump prediction traffic until the shadow window resolves one way or the
   other; every answer along the way must come from the live model. *)
let pump_until_resolved c addr loops expected =
  let rec go n =
    if n = 0 then Alcotest.fail "shadow window never resolved";
    drive_round c loops expected;
    let st = stats_exn addr in
    if stat st "shadow-promoted" + stat st "shadow-rejected" = 0 then go (n - 1)
  in
  go 30

let test_shadow_promotes_matching_candidate () =
  Alcotest.(check int) "shadowing is off by default" 0 Serve.default_opts.Serve.shadow_window;
  let loops = kernel_loops () in
  let expected = local_expected "golden_nn.artifact" loops in
  let opts = { default_test_opts with Serve.shadow_window = 8; shadow_threshold = 0.0 } in
  let _t, th, addr = start_server ~opts ~artifact:"golden_nn.artifact" () in
  let c = connect_exn addr in
  (* A candidate with identical predictions (the same artifact) must ride
     out the window without a single disagreement and be promoted. *)
  reload_expect_shadow c (fixture "golden_nn.artifact");
  Alcotest.(check int) "shadow started" 1 (stat (stats_exn addr) "shadow-active");
  pump_until_resolved c addr loops expected;
  let st = stats_exn addr in
  Alcotest.(check int) "promoted" 1 (stat st "shadow-promoted");
  Alcotest.(check int) "not rejected" 0 (stat st "shadow-rejected");
  Alcotest.(check int) "zero disagreements" 0 (stat st "shadow-disagreements");
  Alcotest.(check int) "promotion counts as a reload" 1 (stat st "reloads");
  Alcotest.(check int) "shadow cleared" 0 (stat st "shadow-active");
  drive_round c loops expected;
  Serve_client.close c;
  shutdown_server th addr

let test_shadow_rejects_divergent_candidate () =
  let loops = kernel_loops () in
  let expected_nn = local_expected "golden_nn.artifact" loops in
  let expected_svm = local_expected "golden_svm.artifact" loops in
  (* The rejection path is only exercised if the fixtures actually
     disagree somewhere — fail loudly if they ever converge. *)
  Alcotest.(check bool) "fixtures disagree somewhere" true (expected_nn <> expected_svm);
  let opts = { default_test_opts with Serve.shadow_window = 8; shadow_threshold = 0.0 } in
  let _t, th, addr = start_server ~opts ~artifact:"golden_nn.artifact" () in
  let c = connect_exn addr in
  reload_expect_shadow c (fixture "golden_svm.artifact");
  (* While the SVM shadows, and after it is rejected, every answer is the
     live NN's — the candidate's answers are never sent. *)
  pump_until_resolved c addr loops expected_nn;
  let st = stats_exn addr in
  Alcotest.(check int) "rejected" 1 (stat st "shadow-rejected");
  Alcotest.(check int) "not promoted" 0 (stat st "shadow-promoted");
  Alcotest.(check bool) "disagreements counted" true (stat st "shadow-disagreements" > 0);
  Alcotest.(check int) "no reload landed" 0 (stat st "reloads");
  Alcotest.(check bool) "live model still the NN" true
    (contains ~sub:"model-kind nn" (stats_raw_exn addr));
  drive_round c loops expected_nn;
  Serve_client.close c;
  shutdown_server th addr

(* --- corrupt frames kill the connection, not the server -------------------- *)

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_corrupt_frame_kills_connection_only () =
  let loops = kernel_loops () in
  let expected = local_expected "golden_nn.artifact" loops in
  let t, th, addr = start_server () in
  (* A healthy connection, exercised before and after the damage. *)
  let a = connect_exn addr in
  (match Serve_client.predict a (List.hd loops) with
  | Ok (Wire.Factor f) -> Alcotest.(check int) "A predicts before damage" expected.(0) f
  | _ -> Alcotest.fail "A's first predict failed");
  (* A raw connection pushing a digest-corrupt frame: the server must close
     it without answering. *)
  let fd = raw_connect (Serve.port t) in
  let frame =
    Bytes.of_string (Wire.encode (Wire.request_payload (Wire.Control "ping")))
  in
  let last = Bytes.length frame - 1 in
  Bytes.set frame last (Char.chr (Char.code (Bytes.get frame last) lxor 0xff));
  let written = Unix.write fd frame 0 (Bytes.length frame) in
  Alcotest.(check int) "corrupt frame fully written" (Bytes.length frame) written;
  let got =
    try Unix.read fd (Bytes.create 64) 0 64
    with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  Alcotest.(check int) "server closed the damaged connection" 0 got;
  Unix.close fd;
  (* A torn frame — half a frame then EOF — is damage on that connection
     too, and must not take the server with it. *)
  let fd2 = raw_connect (Serve.port t) in
  let half = Bytes.length frame / 2 in
  ignore (Unix.write fd2 frame 0 half);
  Unix.close fd2;
  (* ...while connection A and the server itself keep working. *)
  (match Serve_client.control a "ping" with
  | Ok (Wire.Okay _) -> ()
  | _ -> Alcotest.fail "A's ping after damage failed");
  (match Serve_client.predict a (List.hd loops) with
  | Ok (Wire.Factor f) -> Alcotest.(check int) "A predicts after damage" expected.(0) f
  | _ -> Alcotest.fail "A's predict after damage failed");
  Serve_client.close a;
  let stats = stats_exn addr in
  Alcotest.(check bool) "the damage was counted" true (stat stats "frames-corrupt" >= 1);
  shutdown_server th addr

(* --- graceful drain --------------------------------------------------------- *)

let test_graceful_drain_answers_everything () =
  let loops = kernel_loops () in
  let expected = local_expected "golden_nn.artifact" loops in
  let _t, th, addr = start_server () in
  let c = connect_exn addr in
  let n = 120 in
  (* Pipeline a deep burst, then ask for shutdown on the same connection —
     every queued request must still be answered, in order, before the
     drain acknowledgement. *)
  for i = 0 to n - 1 do
    match Serve_client.send c (Wire.Predict (List.nth loops (i mod List.length loops))) with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done;
  (match Serve_client.send c (Wire.Control "shutdown") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  for i = 0 to n - 1 do
    match Serve_client.recv c with
    | Ok (Wire.Factor f) ->
      Alcotest.(check int)
        (Printf.sprintf "drained response %d" i)
        expected.(i mod List.length loops)
        f
    | Ok Wire.Busy -> () (* admission control may shed under the burst *)
    | Ok r -> Alcotest.fail ("drain response: " ^ Wire.response_payload r)
    | Error e -> Alcotest.fail ("drain: " ^ e)
  done;
  (match Serve_client.recv c with
  | Ok (Wire.Okay msg) ->
    Alcotest.(check bool) ("drain ack last: " ^ msg) true (contains ~sub:"drain" msg)
  | Ok r -> Alcotest.fail ("expected drain ack, got " ^ Wire.response_payload r)
  | Error e -> Alcotest.fail ("drain ack: " ^ e));
  Serve_client.close c;
  Thread.join th

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_torn_frame_incomplete;
    QCheck_alcotest.to_alcotest prop_interior_corruption_rejected;
    ("frame stream decodes in sequence", `Quick, test_frame_stream);
    ("oversized length prefix rejected", `Quick, test_oversized_length_rejected);
    ("multi-client bit-identical", `Slow, test_multi_client_bit_identical);
    ("backpressure sheds explicitly", `Slow, test_backpressure_sheds_explicitly);
    ("hot reload under load", `Slow, test_hot_reload_under_load);
    ("shadow promotes matching candidate", `Slow, test_shadow_promotes_matching_candidate);
    ("shadow rejects divergent candidate", `Slow, test_shadow_rejects_divergent_candidate);
    ("corrupt frame kills only its connection", `Slow, test_corrupt_frame_kills_connection_only);
    ("graceful drain answers everything", `Slow, test_graceful_drain_answers_everything);
  ]
