(* Tests for the textual loop format: round-tripping, hand-written
   programs, and error reporting. *)

let structurally_equal = Fuzz.Oracle.structurally_equal

let test_roundtrip_kernels () =
  List.iter
    (fun (name, maker) ->
      let l = maker ~name ~trip:48 in
      let text = Loop_text.to_string l in
      match Loop_text.parse text with
      | Error e -> Alcotest.failf "%s: parse failed: %s\n%s" name e text
      | Ok l' ->
        if not (structurally_equal l l') then
          Alcotest.failf "%s: roundtrip not structurally equal\n%s" name text)
    Kernels.all

let test_roundtrip_synthetic () =
  for seed = 0 to 150 do
    let l = Fuzz.Gen.synth_loop ~prefix:"rt" seed in
    match Loop_text.parse (Loop_text.to_string l) with
    | Error e -> Alcotest.failf "seed %d: %s" seed e
    | Ok l' ->
      if not (structurally_equal l l') then Alcotest.failf "seed %d: not equal" seed
  done

(* The same property over the fuzzer's adversarial generator, whose loops
   reach corners Synth never emits (rotation chains, indirect stores,
   trip 0): parse ∘ print is the identity up to register numbering, and
   the parse-renumbered form prints to a true fixed point. *)
let prop_roundtrip_fuzz_gen =
  QCheck.Test.make ~count:120 ~name:"parse/print round-trip on fuzzed loops"
    QCheck.(make Gen.(0 -- 3000))
    (fun id ->
      let c = Fuzz.Gen.case ~seed:11 ~id () in
      let l = c.Fuzz.Gen.loop in
      let text = Loop_text.to_string l in
      match Loop_text.parse text with
      | Error e -> QCheck.Test.fail_reportf "case %d: %s" id e
      | Ok l' ->
        if not (structurally_equal l l') then
          QCheck.Test.fail_reportf "case %d: not structurally equal" id
        else begin
          let normal = Loop_text.to_string l' in
          match Loop_text.parse normal with
          | Error e -> QCheck.Test.fail_reportf "case %d: normal form: %s" id e
          | Ok l'' ->
            Loop_text.to_string l'' = normal
            || QCheck.Test.fail_reportf "case %d: normal form not a fixed point" id
        end)

let test_roundtrip_preserves_semantics () =
  (* Stronger than structural equality: the parsed loop must behave
     identically under the reference interpreter. *)
  List.iter
    (fun (name, maker) ->
      let l = maker ~name ~trip:20 in
      match Loop_text.parse (Loop_text.to_string l) with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok l' ->
        let s1 = Interp.fresh_state () and s2 = Interp.fresh_state () in
        ignore (Interp.run s1 l ~trips:20 ~phase:0);
        ignore (Interp.run s2 l' ~trips:20 ~phase:0);
        Alcotest.(check bool) (name ^ " same memory") true
          (Interp.memory_image s1 = Interp.memory_image s2))
    [ ("daxpy", Kernels.daxpy); ("stencil5", Kernels.stencil5); ("ddot", Kernels.ddot) ]

let test_parse_handwritten () =
  let text =
    {|
# a hand-written daxpy
loop my_loop {
  lang fortran
  trip 128
  outer 4
  array x 144 elem=8
  array y 144 elem=8
  reg f a
  f xv = load x [1*i+0]
  f yv = load y [1*i+0]
  f r = fmadd a xv yv
  store y [1*i+0] r
}
|}
  in
  match Loop_text.parse text with
  | Error e -> Alcotest.fail e
  | Ok l ->
    Alcotest.(check string) "name" "my_loop" l.Loop.name;
    Alcotest.(check int) "trip" 128 l.Loop.trip_actual;
    Alcotest.(check int) "outer" 4 l.Loop.outer_trip;
    Alcotest.(check int) "arrays" 2 (Array.length l.Loop.arrays);
    Alcotest.(check int) "ops incl overhead" 7 (Loop.op_count l);
    Alcotest.(check bool) "fortran no alias" false l.Loop.aliased

let test_parse_predication_and_exit () =
  let text =
    {|
loop guarded {
  lang c
  trip 64
  exit_prob 0.01
  array x 80 elem=4
  i v = load x [1*i+0]
  i p = cmp v
  (p) i w = ialu v v
  store x [1*i+1] w
  exit p
}
|}
  in
  match Loop_text.parse text with
  | Error e -> Alcotest.fail e
  | Ok l ->
    Alcotest.(check bool) "has exit" true (Loop.has_early_exit l);
    Alcotest.(check int) "one predicated op" 1
      (Array.fold_left
         (fun acc (op : Op.t) -> if op.Op.pred <> None then acc + 1 else acc)
         0 l.Loop.body)

let test_parse_indirect () =
  let text =
    {|
loop gather {
  lang c
  trip 32
  array idx 48 elem=4
  array tbl 512 elem=8
  array out 48 elem=8
  i k = load idx [1*i+0]
  f v = load! tbl [0*i+0] k
  store out [1*i+0] v
}
|}
  in
  match Loop_text.parse text with
  | Error e -> Alcotest.fail e
  | Ok l -> Alcotest.(check int) "one indirect ref" 1 (Loop.indirect_ref_count l)

let test_parse_many () =
  let one = Loop_text.to_string (Kernels.daxpy ~name:"a" ~trip:16) in
  let two = Loop_text.to_string (Kernels.ddot ~name:"b" ~trip:16) in
  match Loop_text.parse_many (one ^ "\n" ^ two) with
  | Error e -> Alcotest.fail e
  | Ok loops -> Alcotest.(check int) "two loops" 2 (List.length loops)

let expect_error what text =
  match Loop_text.parse text with
  | Ok _ -> Alcotest.failf "%s should not parse" what
  | Error _ -> ()

let test_parse_errors () =
  expect_error "empty" "";
  expect_error "missing trip" "loop l {\n lang c\n}";
  expect_error "unknown register" "loop l {\n trip 4\n f y = mov nosuch\n}";
  expect_error "unknown array" "loop l {\n trip 4\n f v = load a [1*i+0]\n}";
  expect_error "unknown opcode" "loop l {\n trip 4\n reg f a\n f v = frobnicate a\n}";
  expect_error "unterminated" "loop l {\n trip 4";
  expect_error "bad bracket" "loop l {\n trip 4\n array a 8 elem=8\n f v = load a [oops]\n}";
  expect_error "double declaration" "loop l {\n trip 4\n reg f a\n reg f a\n}"

let test_error_carries_line () =
  match Loop_text.parse "loop l {\n trip 4\n f v = mov nosuch\n}" with
  | Ok _ -> Alcotest.fail "should fail"
  | Error e ->
    Alcotest.(check bool) "mentions line 3" true
      (let n = "line 3" in
       let h = String.length e in
       let rec go i = i + 6 <= h && (String.sub e i 6 = n || go (i + 1)) in
       go 0)

let suite =
  [
    ("roundtrip kernels", `Quick, test_roundtrip_kernels);
    ("roundtrip synthetic", `Quick, test_roundtrip_synthetic);
    QCheck_alcotest.to_alcotest prop_roundtrip_fuzz_gen;
    ("roundtrip semantics", `Quick, test_roundtrip_preserves_semantics);
    ("parse handwritten", `Quick, test_parse_handwritten);
    ("parse predication/exit", `Quick, test_parse_predication_and_exit);
    ("parse indirect", `Quick, test_parse_indirect);
    ("parse many", `Quick, test_parse_many);
    ("parse errors", `Quick, test_parse_errors);
    ("error line numbers", `Quick, test_error_carries_line);
  ]
