(* Tests for the support library: RNG, statistics, tables, CSV. *)

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let c1 = Rng.int64 child in
  (* Drawing from the parent must not change the child's future. *)
  let _ = Rng.int64 parent in
  let parent2 = Rng.create 5 in
  let child2 = Rng.split parent2 in
  Alcotest.(check int64) "split deterministic" c1 (Rng.int64 child2)

let test_rng_copy () =
  let a = Rng.create 11 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "std near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.05)

let test_rng_weighted_choice () =
  let rng = Rng.create 3 in
  let counts = Hashtbl.create 2 in
  for _ = 1 to 5000 do
    let v = Rng.weighted_choice rng [| (0.9, "a"); (0.1, "b") |] in
    Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
  done;
  let a = Option.value (Hashtbl.find_opt counts "a") ~default:0 in
  Alcotest.(check bool) "90/10 split" true (a > 4200 && a < 4800)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_choice () =
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    let v = Rng.choice rng [| 1; 2; 3 |] in
    Alcotest.(check bool) "chosen from array" true (v >= 1 && v <= 3)
  done

(* --- Stats --- *)

let test_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_median_odd () = check_float "odd median" 3.0 (Stats.median [| 5.0; 3.0; 1.0 |])

let test_median_even () =
  check_float "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_median_no_mutation () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  let _ = Stats.median xs in
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_variance () =
  check_float "sample variance" 2.5 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_variance_singleton () = check_float "n<2" 0.0 (Stats.variance [| 42.0 |])

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Stats.percentile xs 50.0)

let test_min_max_index () =
  let xs = [| 3.0; 1.0; 1.0; 5.0 |] in
  Alcotest.(check int) "min first tie" 1 (Stats.min_index xs);
  Alcotest.(check int) "max" 3 (Stats.max_index xs)

let test_rank_of () =
  let costs = [| 30.0; 10.0; 20.0 |] in
  Alcotest.(check int) "rank of best" 0 (Stats.rank_of costs 1);
  Alcotest.(check int) "rank of mid" 1 (Stats.rank_of costs 2);
  Alcotest.(check int) "rank of worst" 2 (Stats.rank_of costs 0)

let test_rank_of_ties () =
  let costs = [| 5.0; 5.0; 5.0 |] in
  Alcotest.(check int) "tie by index 0" 0 (Stats.rank_of costs 0);
  Alcotest.(check int) "tie by index 1" 1 (Stats.rank_of costs 1);
  Alcotest.(check int) "tie by index 2" 2 (Stats.rank_of costs 2)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "lower bin" 2 c0;
  Alcotest.(check int) "upper bin" 2 c1

(* --- Table --- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_renders () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "long-cell"; "22" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "contains cell" true (contains ~needle:"long-cell" s)

let test_table_wrong_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_cell_pct () =
  Alcotest.(check string) "pct" "5.1%" (Table.cell_pct 0.051);
  Alcotest.(check string) "neg pct" "-2.0%" (Table.cell_pct (-0.02))

let test_bar () =
  Alcotest.(check string) "full" "##########" (Table.bar ~width:10 1.0);
  Alcotest.(check string) "clamped" "##########" (Table.bar ~width:10 2.0);
  Alcotest.(check string) "empty" "" (Table.bar ~width:10 0.0)

(* --- Csvio --- *)

let roundtrip rows =
  let path = Filename.temp_file "unrollml" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csvio.write path rows;
      Csvio.read path)

let test_csv_roundtrip_simple () =
  let rows = [ [ "a"; "b" ]; [ "1"; "2" ] ] in
  Alcotest.(check (list (list string))) "simple" rows (roundtrip rows)

let test_csv_roundtrip_quoting () =
  let rows = [ [ "he,llo"; "wo\"rld"; "multi\nline" ]; [ ""; "x"; "y" ] ] in
  Alcotest.(check (list (list string))) "quoted" rows (roundtrip rows)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csvio.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csvio.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csvio.escape "a\"b")

(* --- Parallel scheduler --- *)

(* Spin for a task-dependent but deterministic amount of work, so schedules
   differ across runs without timers. *)
let busy n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc)

let test_parallel_map_identical () =
  let input = Array.init 257 (fun i -> i) in
  let f x = (x * x) + (x mod 7) in
  let seq = Parallel.map ~jobs:1 f input in
  List.iter
    (fun j ->
      Alcotest.(check (array int))
        (Printf.sprintf "map at j=%d" j)
        seq
        (Parallel.map ~jobs:j f input))
    [ 2; 4; 8 ]

let test_parallel_tabulate_iter () =
  let n = 100 in
  let expect = Array.init n (fun i -> 3 * i) in
  Alcotest.(check (array int)) "tabulate" expect (Parallel.tabulate ~jobs:4 n (fun i -> 3 * i));
  let out = Array.make n 0 in
  Parallel.iter ~jobs:4 n (fun i -> out.(i) <- 3 * i);
  Alcotest.(check (array int)) "iter writes disjoint slots" expect out

let test_parallel_nested_identical () =
  let outer j =
    Parallel.tabulate ~jobs:j 12 (fun i ->
        let inner = Parallel.tabulate ~jobs:3 8 (fun k -> (i * 31) + (k * k)) in
        Array.fold_left ( + ) 0 inner)
  in
  let seq = outer 1 in
  Alcotest.(check (array int)) "nested j=4" seq (outer 4);
  Alcotest.(check (array int)) "nested j=8" seq (outer 8)

let test_parallel_first_exception_by_index () =
  (* Several tasks raise; the re-raised one must be the lowest input index
     at every job count, even though a thief often finishes index 40
     before the owner reaches index 17. *)
  let f i =
    busy ((i * 131) mod 997);
    if i mod 23 = 17 then failwith (string_of_int i) else i
  in
  List.iter
    (fun j ->
      match Parallel.map ~jobs:j f (Array.init 120 Fun.id) with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure s ->
        Alcotest.(check string) (Printf.sprintf "first raise at j=%d" j) "17" s)
    [ 1; 2; 8 ]

let test_fork_join () =
  let a, b = Parallel.fork_join (fun () -> busy 1000; 41 + 1) (fun () -> "ab" ^ "c") in
  Alcotest.(check int) "left" 42 a;
  Alcotest.(check string) "right" "abc" b;
  (* When both sides raise, the left exception wins. *)
  (match Parallel.fork_join (fun () -> failwith "left") (fun () -> failwith "right") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure s -> Alcotest.(check string) "left wins" "left" s);
  match Parallel.fork_join ~jobs:1 (fun () -> 1) (fun () -> 2) with
  | a, b ->
    Alcotest.(check int) "sequential left" 1 a;
    Alcotest.(check int) "sequential right" 2 b

let test_steal_counter_skew () =
  (* Seed two deques with a deliberately skewed split: the first chunk is
     all heavy tasks, the second all trivial ones.  The helper that drains
     the light chunk must steal from the heavy one for the batch to finish,
     so the global steal counter has to move. *)
  let steals0 = Telemetry.counter Telemetry.global ~pass:"parallel" "steals" in
  let tasks0 = Telemetry.counter Telemetry.global ~pass:"parallel" "tasks" in
  let n = 64 in
  ignore
    (Parallel.map ~jobs:2
       (fun i -> busy (if i < n / 2 then 400_000 else 10))
       (Array.init n Fun.id));
  let steals = Telemetry.counter Telemetry.global ~pass:"parallel" "steals" - steals0 in
  let tasks = Telemetry.counter Telemetry.global ~pass:"parallel" "tasks" - tasks0 in
  Alcotest.(check int) "every task counted" n tasks;
  Alcotest.(check bool) "steals happened under skew" true (steals >= 1)

let test_default_jobs_env_override () =
  let set v = Unix.putenv "UNROLLML_JOBS" v in
  let before = try Some (Sys.getenv "UNROLLML_JOBS") with Not_found -> None in
  Fun.protect
    ~finally:(fun () -> set (Option.value before ~default:""))
    (fun () ->
      set "5";
      Alcotest.(check int) "env override" 5 (Parallel.default_jobs ());
      set "0";
      Alcotest.(check bool) "non-positive ignored" true (Parallel.default_jobs () >= 1);
      set "nope";
      Alcotest.(check bool) "garbage ignored" true (Parallel.default_jobs () >= 1);
      set "";
      Alcotest.(check bool) "uncapped recommended count" true
        (Parallel.default_jobs () = Domain.recommended_domain_count ()))

(* Chaos: random task costs, random raisers, random nesting — results and
   the identity of the raised exception must match the sequential run at
   every job count. *)
let prop_parallel_chaos =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 40)
        (triple (0 -- 2000) (0 -- 9) bool))
  in
  let print = QCheck.Print.(list (fun (c, r, n) -> Printf.sprintf "(%d,%d,%b)" c r n)) in
  QCheck.Test.make ~count:30 ~name:"parallel chaos: jobs-invariant results and raises"
    (QCheck.make ~print gen)
    (fun spec ->
      let tasks = Array.of_list spec in
      let f (cost, raise_mod, nest) i =
        busy cost;
        if raise_mod = 3 && i mod 5 = 2 then failwith (string_of_int i);
        if nest then
          Array.fold_left ( + ) i (Parallel.tabulate ~jobs:2 4 (fun k -> i + k))
        else i
      in
      let run jobs =
        match Parallel.map ~jobs (fun i -> f tasks.(i) i) (Array.init (Array.length tasks) Fun.id)
        with
        | r -> Ok r
        | exception Failure s -> Error s
      in
      let seq = run 1 in
      run 2 = seq && run 8 = seq)

(* --- QCheck properties --- *)

let prop_median_bounded =
  QCheck.Test.make ~count:200 ~name:"median within min/max"
    QCheck.(array_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0))
    (fun xs ->
      let m = Stats.median xs in
      let lo = Array.fold_left min xs.(0) xs and hi = Array.fold_left max xs.(0) xs in
      m >= lo && m <= hi)

let prop_rank_is_permutation =
  QCheck.Test.make ~count:200 ~name:"ranks form a permutation"
    QCheck.(array_of_size Gen.(1 -- 16) (float_bound_exclusive 100.0))
    (fun xs ->
      let ranks = Array.mapi (fun i _ -> Stats.rank_of xs i) xs in
      Array.sort compare ranks;
      ranks = Array.init (Array.length xs) (fun i -> i))

let prop_csv_roundtrip =
  QCheck.Test.make ~count:50 ~name:"csv roundtrip"
    QCheck.(small_list (small_list (string_gen Gen.printable)))
    (fun rows ->
      (* Empty trailing rows are not representable; normalise. *)
      let rows = List.filter (fun r -> r <> [] && r <> [ "" ]) rows in
      roundtrip rows = rows)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("rng gaussian moments", `Quick, test_rng_gaussian_moments);
    ("rng weighted choice", `Quick, test_rng_weighted_choice);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng choice", `Quick, test_rng_choice);
    ("stats mean", `Quick, test_mean);
    ("stats median odd", `Quick, test_median_odd);
    ("stats median even", `Quick, test_median_even);
    ("stats median pure", `Quick, test_median_no_mutation);
    ("stats geomean", `Quick, test_geomean);
    ("stats variance", `Quick, test_variance);
    ("stats variance singleton", `Quick, test_variance_singleton);
    ("stats percentile", `Quick, test_percentile);
    ("stats min/max index", `Quick, test_min_max_index);
    ("stats rank_of", `Quick, test_rank_of);
    ("stats rank_of ties", `Quick, test_rank_of_ties);
    ("stats histogram", `Quick, test_histogram);
    ("table renders", `Quick, test_table_renders);
    ("table arity", `Quick, test_table_wrong_arity);
    ("table cell_pct", `Quick, test_cell_pct);
    ("table bar", `Quick, test_bar);
    ("csv roundtrip", `Quick, test_csv_roundtrip_simple);
    ("csv quoting", `Quick, test_csv_roundtrip_quoting);
    ("csv escape", `Quick, test_csv_escape);
    ("parallel map jobs-invariant", `Quick, test_parallel_map_identical);
    ("parallel tabulate/iter", `Quick, test_parallel_tabulate_iter);
    ("parallel nested jobs-invariant", `Quick, test_parallel_nested_identical);
    ("parallel first exception by index", `Quick, test_parallel_first_exception_by_index);
    ("parallel fork_join", `Quick, test_fork_join);
    ("parallel steals under skew", `Quick, test_steal_counter_skew);
    ("parallel default_jobs env", `Quick, test_default_jobs_env_override);
    QCheck_alcotest.to_alcotest prop_parallel_chaos;
    QCheck_alcotest.to_alcotest prop_median_bounded;
    QCheck_alcotest.to_alcotest prop_rank_is_permutation;
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
  ]
