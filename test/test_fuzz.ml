(* Tests for the differential-fuzzing subsystem: directed remainder-loop
   regressions, campaign determinism across jobs settings, generator and
   oracle coverage, shrinker soundness, and compile-cache digest
   uniqueness under fuzzed loops. *)

let machine = Machine.itanium2

(* --- directed remainder-loop regressions -------------------------------- *)

(* Trip counts straddling the unroll factor — 0, 1, factor−1, factor,
   factor+1 — with the trip both known and unknown at compile time.  The
   trip-0 × factor-1 and trip-0 × dynamic cells are the exact
   configurations where the assembler's effective-trip clamp used to
   execute a phantom iteration. *)
let test_remainder_edges () =
  List.iter
    (fun factor ->
      List.iter
        (fun trip ->
          List.iter
            (fun dynamic ->
              let loop =
                Fuzz.Gen.with_exact_trip ~dynamic
                  (Kernels.daxpy ~name:(Printf.sprintf "re%d_%d" factor trip) ~trip:(max trip 1))
                  trip
              in
              let exe =
                Pipeline.compile ~cache:(Compile_cache.create ()) machine ~swp:false loop factor
              in
              let st0 = Interp.fresh_state () in
              ignore (Interp.run st0 loop ~trips:trip ~phase:0);
              let st1 = Interp.fresh_state () in
              Fuzz.Oracle.run_exe st1 exe;
              if not (Fuzz.Oracle.equivalent_modulo_spills exe st0 st1 loop.Loop.live_out)
              then
                Alcotest.failf "factor %d trip %d dynamic %b: compiled loop diverges"
                  factor trip dynamic)
            [ false; true ])
        [ 0; 1; max 0 (factor - 1); factor; factor + 1 ])
    [ 1; 2; 3; 5; 8 ]

(* --- oracle property over generated cases ------------------------------- *)

let prop_no_violations =
  QCheck.Test.make ~count:60 ~name:"every oracle holds on generated cases"
    QCheck.(make Gen.(0 -- 3000))
    (fun id ->
      let case = Fuzz.Gen.case ~seed:42 ~id () in
      let outcome = Fuzz.Oracle.run_case case in
      match outcome.Fuzz.Oracle.violations with
      | [] -> true
      | (oracle, detail) :: _ ->
        QCheck.Test.fail_reportf "case %d violates %s: %s" id oracle detail)

(* --- campaign: determinism, coverage, digests --------------------------- *)

let campaign = lazy (Fuzz.Driver.run ~jobs:2 ~telemetry:(Telemetry.create ()) ~budget:48 ~seed:42 ())

let test_campaign_clean () =
  let r = Lazy.force campaign in
  Alcotest.(check int) "no crashes" 0 (List.length r.Fuzz.Driver.crashes);
  Alcotest.(check int) "no digest collisions" 0 (List.length r.Fuzz.Driver.digest_collisions)

let test_campaign_coverage () =
  let r = Lazy.force campaign in
  List.iter
    (fun kind ->
      let n = Option.value (List.assoc_opt kind r.Fuzz.Driver.op_coverage) ~default:0 in
      if n = 0 then Alcotest.failf "op kind %s never generated" kind)
    Fuzz.Gen.op_kinds;
  List.iter
    (fun name ->
      let n = Option.value (List.assoc_opt name r.Fuzz.Driver.oracle_runs) ~default:0 in
      if n = 0 then Alcotest.failf "oracle %s never exercised" name)
    Fuzz.Oracle.oracle_names

let test_campaign_jobs_invariant () =
  let run jobs =
    Fuzz.Driver.run ~jobs ~telemetry:(Telemetry.create ()) ~budget:16 ~seed:7 ()
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "reports bit-identical at jobs 1 vs 4" true (a = b)

let test_cache_keys_distinct_across_cases () =
  (* Distinct generated cases must digest to distinct compile-cache keys:
     a collision would silently serve one loop's schedules for another. *)
  let seen = Hashtbl.create 256 in
  for id = 0 to 150 do
    let c = Fuzz.Gen.case ~seed:42 ~id () in
    let key =
      Compile_cache.key ~machine:c.Fuzz.Gen.machine ~swp:c.Fuzz.Gen.swp
        ~factor:c.Fuzz.Gen.factor c.Fuzz.Gen.loop
    in
    let content =
      (c.Fuzz.Gen.machine.Machine.mach_name, c.Fuzz.Gen.swp, c.Fuzz.Gen.factor,
       { c.Fuzz.Gen.loop with Loop.name = "" })
    in
    match Hashtbl.find_opt seen key with
    | Some other when other <> content -> Alcotest.failf "digest collision at case %d" id
    | _ -> Hashtbl.replace seen key content
  done

(* --- generator ----------------------------------------------------------- *)

let test_generated_loops_validate () =
  for id = 0 to 200 do
    let c = Fuzz.Gen.case ~seed:11 ~id () in
    match Loop.validate c.Fuzz.Gen.loop with
    | Ok () -> ()
    | Error e -> Alcotest.failf "case %d: %s" id e
  done

let test_generation_deterministic () =
  for id = 0 to 50 do
    let a = Fuzz.Gen.case ~seed:42 ~id () and b = Fuzz.Gen.case ~seed:42 ~id () in
    if a <> b then Alcotest.failf "case %d differs between identical draws" id
  done

let test_adversarial_trips_hit_edges () =
  (* Over a modest sample, the trip distribution must actually produce the
     boundary values the generator exists to produce. *)
  let rng = Rng.create 3 in
  let factor = 4 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 500 do
    Hashtbl.replace seen (Fuzz.Gen.adversarial_trip rng ~factor) ()
  done;
  List.iter
    (fun t ->
      if not (Hashtbl.mem seen t) then Alcotest.failf "trip %d never drawn" t)
    [ 0; 1; factor - 1; factor; factor + 1 ]

(* --- shrinker ------------------------------------------------------------ *)

let test_shrink_minimises () =
  (* Predicate: the loop still contains an integer multiply.  The shrinker
     should strip everything else and keep a valid loop that satisfies it. *)
  let has_imul (l : Loop.t) =
    Array.exists (fun (op : Op.t) -> op.Op.opcode = Op.Imul) l.Loop.body
  in
  let c = Fuzz.Gen.case ~seed:42 ~id:2 () in
  let loop = c.Fuzz.Gen.loop in
  Alcotest.(check bool) "seed case qualifies" true (has_imul loop);
  let shrunk = Fuzz.Shrink.shrink has_imul loop in
  Alcotest.(check bool) "shrunk still qualifies" true (has_imul shrunk);
  Alcotest.(check bool) "shrunk validates" true (Loop.validate shrunk = Ok ());
  Alcotest.(check bool) "body did not grow" true
    (Array.length shrunk.Loop.body <= Array.length loop.Loop.body);
  Alcotest.(check bool) "trip reduced to the floor" true (shrunk.Loop.trip_actual <= 1);
  (* overhead trio + the imul is the smallest qualifying body *)
  Alcotest.(check int) "only the witness op survives" 4 (Array.length shrunk.Loop.body)

let test_shrink_passing_input_unchanged () =
  let c = Fuzz.Gen.case ~seed:42 ~id:5 () in
  let shrunk = Fuzz.Shrink.shrink (fun _ -> false) c.Fuzz.Gen.loop in
  Alcotest.(check bool) "non-failing loop returned as-is" true (shrunk == c.Fuzz.Gen.loop)

(* --- corpus serialisation ------------------------------------------------ *)

let test_repro_roundtrip () =
  let c = Fuzz.Gen.case ~seed:42 ~id:13 () in
  let text = Fuzz.Driver.repro_to_string c ~oracle:"unroll-interp" in
  match Fuzz.Driver.parse_repro text with
  | Error e -> Alcotest.failf "repro did not parse: %s" e
  | Ok { rcase; roracle } ->
    Alcotest.(check (option string)) "oracle header" (Some "unroll-interp") roracle;
    Alcotest.(check int) "factor" c.Fuzz.Gen.factor rcase.Fuzz.Gen.factor;
    Alcotest.(check bool) "swp" c.Fuzz.Gen.swp rcase.Fuzz.Gen.swp;
    Alcotest.(check bool) "rle" c.Fuzz.Gen.rle rcase.Fuzz.Gen.rle;
    Alcotest.(check string) "machine" c.Fuzz.Gen.machine.Machine.mach_name
      rcase.Fuzz.Gen.machine.Machine.mach_name;
    Alcotest.(check bool) "loop survives structurally" true
      (Fuzz.Oracle.structurally_equal c.Fuzz.Gen.loop rcase.Fuzz.Gen.loop)

let suite =
  [
    ("remainder-loop edge cases, factors x trips x static/dynamic", `Quick, test_remainder_edges);
    QCheck_alcotest.to_alcotest prop_no_violations;
    ("campaign finds no crashes or collisions", `Slow, test_campaign_clean);
    ("campaign covers every op kind and oracle", `Slow, test_campaign_coverage);
    ("campaign report invariant across jobs", `Slow, test_campaign_jobs_invariant);
    ("cache digests distinct across fuzzed cases", `Quick, test_cache_keys_distinct_across_cases);
    ("generated loops validate", `Quick, test_generated_loops_validate);
    ("generation is deterministic", `Quick, test_generation_deterministic);
    ("adversarial trips hit the factor boundary", `Quick, test_adversarial_trips_hit_edges);
    ("shrinker minimises to the witness", `Quick, test_shrink_minimises);
    ("shrinker leaves passing loops alone", `Quick, test_shrink_passing_input_unchanged);
    ("reproducer serialisation round-trips", `Quick, test_repro_roundtrip);
  ]
