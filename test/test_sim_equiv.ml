(* The fast-path contract: [Simulator] with its steady-state fast-forwards
   (fetch skip, entry skip, wrap-period replay), memoised dependence graphs
   and array kernels must be bit-identical — total cycles AND the six-way
   stats breakdown, on warm states as well as cold — to [Sim_reference],
   the frozen pre-optimisation implementation.  See DESIGN.md §9 for the
   exactness arguments these properties back. *)

let machine = Machine.itanium2

let stats_tuple (s : Simulator.stats) =
  ( s.Simulator.issue_cycles,
    s.Simulator.data_stall_cycles,
    s.Simulator.fetch_stall_cycles,
    s.Simulator.branch_cycles,
    s.Simulator.entry_overhead_cycles,
    s.Simulator.pipeline_fill_cycles )

let ref_stats_tuple (s : Sim_reference.stats) =
  ( s.Sim_reference.issue_cycles,
    s.Sim_reference.data_stall_cycles,
    s.Sim_reference.fetch_stall_cycles,
    s.Sim_reference.branch_cycles,
    s.Sim_reference.entry_overhead_cycles,
    s.Sim_reference.pipeline_fill_cycles )

(* Two consecutive runs on one state, like the sweep's warm-up/measure
   pair: the second run exercises the cross-call entry and plan memos. *)
let fast_pair exe iters =
  let st = Simulator.create_state machine in
  let c1, s1 = Simulator.run_profiled ~max_sim_iters:iters st exe in
  let c2, s2 = Simulator.run_profiled ~max_sim_iters:iters st exe in
  ((c1, stats_tuple s1), (c2, stats_tuple s2))

let naive_pair exe iters =
  let st = Sim_reference.create_state machine in
  let c1, s1 = Sim_reference.run_profiled ~max_sim_iters:iters st exe in
  let c2, s2 = Sim_reference.run_profiled ~max_sim_iters:iters st exe in
  ((c1, ref_stats_tuple s1), (c2, ref_stats_tuple s2))

let gen =
  QCheck.Gen.(
    let* seed = 0 -- 60000 in
    let* f = 1 -- 8 in
    let* swp = bool in
    let* iters = oneofl [ 40; 75; 200 ] in
    let* small_arrays = bool in
    let l = Fuzz.Gen.synth_loop ~prefix:"qe" seed in
    (* Small arrays wrap within the simulated window, which is what engages
       the wrap-period fast-forward. *)
    let l = if small_arrays then Fuzz.Gen.with_array_lengths l (3 + (seed mod 13)) else l in
    let l = { l with Loop.trip_actual = 1 + (seed mod 900) } in
    return (l, f, swp, iters))

let prop_fast_equals_reference =
  QCheck.Test.make ~count:300
    ~name:"fast-forwarded Simulator bit-identical to Sim_reference"
    (QCheck.make gen)
    (fun (loop, f, swp, iters) ->
      let exe = Simulator.compile ~cache:(Compile_cache.create ()) machine ~swp loop f in
      naive_pair exe iters = fast_pair exe iters)

let prop_fast_forward_flag_is_pure =
  QCheck.Test.make ~count:120
    ~name:"fast_forward off takes the naive route to the same bits"
    (QCheck.make gen)
    (fun (loop, f, swp, iters) ->
      let exe = Simulator.compile ~cache:(Compile_cache.create ()) machine ~swp loop f in
      let on = fast_pair exe iters in
      Simulator.fast_forward := false;
      let off =
        Fun.protect
          ~finally:(fun () -> Simulator.fast_forward := true)
          (fun () -> fast_pair exe iters)
      in
      on = off)

(* --- shared dependence graphs ------------------------------------------ *)

let test_deps_memo_transparent () =
  (* Memoised CSR graphs must change nothing downstream: same schedules
     (including the attached CSR), same feature vectors. *)
  let with_memo enabled f =
    let prev = !Deps_memo.enabled in
    Deps_memo.enabled := enabled;
    Fun.protect ~finally:(fun () -> Deps_memo.enabled := prev) f
  in
  List.iter
    (fun (name, maker) ->
      let loop = maker ~name ~trip:96 in
      List.iter
        (fun swp ->
          let off =
            with_memo false (fun () ->
                Pipeline.compile ~cache:(Compile_cache.create ()) machine ~swp loop 4)
          in
          let on =
            with_memo true (fun () ->
                Pipeline.compile ~cache:(Compile_cache.create ()) machine ~swp loop 4)
          in
          if off <> on then Alcotest.failf "%s swp=%b: schedules differ under memo" name swp)
        [ false; true ];
      let f_off = with_memo false (fun () -> Features.extract machine loop) in
      let f_on = with_memo true (fun () -> Features.extract machine loop) in
      Alcotest.(check (array (float 0.0))) (name ^ " features") f_off f_on)
    Kernels.all

(* --- end-to-end labels -------------------------------------------------- *)

let test_labels_unchanged_by_fast_paths () =
  (* The sweep that labels the FAST suite — noise, cycle filters, argmin —
     must produce the same cycles and therefore the same best factor with
     the fast paths on and off.  Fresh compile caches per run so nothing is
     served from the cycles memo. *)
  let benchmarks =
    Suite.full ~scale:0.04 ~seed:Config.fast.Config.seed
    |> List.filteri (fun i _ -> i < 4)
  in
  let loops = List.concat_map (fun (b : Suite.benchmark) ->
      Array.to_list (Array.map fst b.Suite.loops)) benchmarks
  in
  let sweep loop =
    let rng = Rng.create 2005 in
    Measure.sweep ~noise:0.015 ~runs:5 ~max_sim_iters:150
      ~cache:(Compile_cache.create ()) ~rng ~machine ~swp:false loop
  in
  List.iter
    (fun loop ->
      let on = sweep loop in
      Simulator.fast_forward := false;
      let off =
        Fun.protect
          ~finally:(fun () -> Simulator.fast_forward := true)
          (fun () -> sweep loop)
      in
      Alcotest.(check (array int)) (loop.Loop.name ^ " cycles") off on;
      let argmin a =
        let best = ref 0 in
        Array.iteri (fun i v -> if v < a.(!best) then best := i) a;
        !best + 1
      in
      Alcotest.(check int) (loop.Loop.name ^ " best factor") (argmin off) (argmin on))
    loops

(* --- RecMII upper bound ------------------------------------------------- *)

let test_rec_mii_bracketed_by_graph_bound () =
  (* The binary search's upper bound is the sum of non-serial edge
     latencies; RecMII must land inside [1, ub] for every kernel. *)
  List.iter
    (fun (name, maker) ->
      let loop = maker ~name ~trip:64 in
      let d = Deps_memo.deps machine loop in
      let ub =
        List.fold_left
          (fun acc (e : Deps.edge) ->
            if e.Deps.dkind <> Deps.Serial then acc + e.Deps.latency else acc)
          1 d.Deps.edges
      in
      let r = Modulo_sched.rec_mii machine loop in
      if not (1 <= r && r <= ub) then
        Alcotest.failf "%s: RecMII %d outside [1, %d]" name r ub)
    Kernels.all

let test_rec_mii_long_recurrence () =
  (* A two-op carried recurrence (acc -> t -> acc, distance 1) whose cycle
     latency exceeds any single-op latency: RecMII must be the full cycle
     latency, which only a genuinely graph-derived search bound admits. *)
  let text =
    {|loop chainrec {
  lang fortran
  trip 64
  array x 256 elem=8
  reg f acc
  f xv = load x [1*i+0]
  f t = fadd acc xv
  f acc = fmul t t
  liveout acc
}|}
  in
  match Loop_text.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok loop ->
    Alcotest.(check int) "RecMII = fadd + fmul latency"
      (machine.Machine.lat_fadd + machine.Machine.lat_fmul)
      (Modulo_sched.rec_mii machine loop)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fast_equals_reference;
    QCheck_alcotest.to_alcotest prop_fast_forward_flag_is_pure;
    ("deps memo transparent to schedules and features", `Quick, test_deps_memo_transparent);
    ("labels unchanged by fast paths", `Slow, test_labels_unchanged_by_fast_paths);
    ("RecMII within graph-derived bound", `Quick, test_rec_mii_bracketed_by_graph_bound);
    ("RecMII of a long carried recurrence", `Quick, test_rec_mii_long_recurrence);
  ]
