(* Tests for the cache model, the simulator and the measurement layer. *)

let machine = Machine.itanium2

(* --- Cache --- *)

let small_geom = { Machine.size_bytes = 256; line_bytes = 64; assoc = 2 }
(* 2 sets x 2 ways of 64-byte lines *)

let test_cache_hit_after_access () =
  let c = Cache.create small_geom in
  Alcotest.(check bool) "first access misses" false (Cache.access c 0);
  Alcotest.(check bool) "second hits" true (Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64)

let test_cache_lru_eviction () =
  let c = Cache.create small_geom in
  (* set 0 holds lines 0, 128, 256, ... (2 ways) *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  ignore (Cache.access c 0);   (* touch 0: 128 is now LRU *)
  ignore (Cache.access c 256); (* evicts 128 *)
  Alcotest.(check bool) "0 still resident" true (Cache.access c 0);
  Alcotest.(check bool) "128 evicted" false (Cache.access c 128)

let test_cache_probe_no_allocate () =
  let c = Cache.create small_geom in
  Alcotest.(check bool) "probe misses" false (Cache.probe c 0);
  Alcotest.(check bool) "still missing" false (Cache.probe c 0)

let test_cache_reset () =
  let c = Cache.create small_geom in
  ignore (Cache.access c 0);
  Cache.reset c;
  Alcotest.(check bool) "cold after reset" false (Cache.probe c 0)

let test_cache_sets_isolate () =
  let c = Cache.create small_geom in
  ignore (Cache.access c 0);   (* set 0 *)
  ignore (Cache.access c 64);  (* set 1 *)
  ignore (Cache.access c 128); (* set 0 *)
  ignore (Cache.access c 192); (* set 1 *)
  Alcotest.(check bool) "set 0 way 1" true (Cache.probe c 0);
  Alcotest.(check bool) "set 1 way 1" true (Cache.probe c 64)

let test_cache_geometry () =
  let c = Cache.create small_geom in
  Alcotest.(check int) "lines" 4 (Cache.lines c);
  Alcotest.(check int) "line bytes" 64 (Cache.line_bytes c)

(* --- Simulator --- *)

let run_loop ?(swp = false) loop u =
  let exe = Simulator.compile machine ~swp loop u in
  let st = Simulator.create_state machine in
  ignore (Simulator.run st exe);
  Simulator.run st exe

let test_sim_deterministic () =
  let loop = Kernels.daxpy ~name:"sim_det" ~trip:200 in
  Alcotest.(check int) "same cycles" (run_loop loop 2) (run_loop loop 2)

let test_sim_more_work_more_cycles () =
  let short = Kernels.daxpy ~name:"sim_short" ~trip:100 in
  let long = Kernels.daxpy ~name:"sim_long" ~trip:1000 in
  Alcotest.(check bool) "10x trips cost more" true (run_loop long 1 > run_loop short 1)

let test_sim_unrolling_helps_streaming () =
  let loop = Kernels.daxpy ~name:"sim_unroll" ~trip:512 in
  Alcotest.(check bool) "u4 beats u1" true (run_loop loop 4 < run_loop loop 1)

let test_sim_unrolling_useless_for_chase () =
  (* A serial pointer chase gains almost nothing from unrolling. *)
  let loop = Kernels.pointer_chase ~name:"sim_chase" ~trip:512 in
  let c1 = run_loop loop 1 and c8 = run_loop loop 8 in
  Alcotest.(check bool) "less than 2x from u8" true
    (float_of_int c1 /. float_of_int c8 < 2.0)

let test_sim_swp_helps_recurrence () =
  let loop = Kernels.ddot ~name:"sim_swp" ~trip:512 in
  Alcotest.(check bool) "pipelined beats straight" true
    (run_loop ~swp:true loop 1 < run_loop ~swp:false loop 1)

let test_sim_outer_trip_scales () =
  let mk outer =
    let b = Builder.create ~lang:Loop.Fortran ~name:"sim_outer" ~outer_trip:outer ~trip:64 () in
    let x = Builder.add_array b "x" in
    let v = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
    let w = Builder.fmul b [ v; v ] in
    Builder.store b ~array:x ~stride:1 ~offset:0 w;
    Builder.finish b
  in
  let c1 = run_loop (mk 1) 1 and c8 = run_loop (mk 8) 1 in
  Alcotest.(check bool) "8 entries cost roughly 8x" true
    (c8 > 6 * c1 && c8 < 10 * c1)

let test_sim_exit_shortens () =
  let b maker p =
    let bld =
      Builder.create ~lang:Loop.C ~name:"sim_exit" ~trip:4096 ~exit_prob:p ()
    in
    maker bld
  in
  let make bld =
    let x = Builder.add_array bld ~length:4200 "x" in
    let v = Builder.load bld ~cls:Op.Int ~array:x ~stride:1 ~offset:0 () in
    let p = Builder.cmp bld [ v ] in
    Builder.early_exit bld ~pred:p;
    Builder.finish bld
  in
  let no_exit = run_loop (b make 0.0) 1 in
  let with_exit = run_loop (b make 0.01) 1 in
  Alcotest.(check bool) "expected early exit shortens run" true (with_exit < no_exit)

let test_sim_code_footprint_costs () =
  (* Same work, hugely different code footprint: the big-code version pays
     I-cache refetch on every one of many entries. *)
  let loop = Kernels.stencil5 ~name:"sim_icache" ~trip:24 in
  let loop = { loop with Loop.outer_trip = 256 } in
  let exe_small = Simulator.compile machine ~swp:false loop 1 in
  let exe_big = Simulator.compile machine ~swp:false loop 8 in
  Alcotest.(check bool) "u8 code much larger" true
    (exe_big.Simulator.total_code_bytes > 3 * exe_small.Simulator.total_code_bytes)

let test_sim_executable_structure () =
  let loop = Kernels.daxpy ~name:"sim_exe" ~trip:103 in
  let exe = Simulator.compile machine ~swp:false loop 4 in
  Alcotest.(check int) "two schedules (kernel+remainder)" 2
    (List.length exe.Simulator.schedules);
  (match exe.Simulator.schedules with
  | [ (_, kt, ph0); (_, rt, ph) ] ->
    Alcotest.(check int) "kernel trips" 25 kt;
    Alcotest.(check int) "kernel phase" 0 ph0;
    Alcotest.(check int) "remainder trips" 3 rt;
    Alcotest.(check int) "remainder phase" 100 ph
  | _ -> Alcotest.fail "expected kernel + remainder");
  let exe1 = Simulator.compile machine ~swp:false loop 1 in
  Alcotest.(check int) "single schedule at u1" 1 (List.length exe1.Simulator.schedules)

let test_sim_extrapolation_close () =
  (* Windowed extrapolation should stay close to full simulation when both
     start cold. *)
  let loop = Kernels.dscal ~name:"sim_extrap" ~trip:3000 in
  let exe = Simulator.compile machine ~swp:false loop 2 in
  let st = Simulator.create_state machine in
  let full = Simulator.run ~max_sim_iters:4000 st exe in
  Simulator.reset_state st;
  let windowed = Simulator.run ~max_sim_iters:300 st exe in
  let ratio = float_of_int windowed /. float_of_int full in
  Alcotest.(check bool)
    (Printf.sprintf "within 15%% (ratio %.3f)" ratio)
    true
    (ratio > 0.85 && ratio < 1.15)

(* --- Measure --- *)

let test_measure_sweep_shape () =
  let rng = Rng.create 5 in
  let loop = Kernels.daxpy ~name:"me_shape" ~trip:256 in
  let cycles = Measure.sweep ~noise:0.0 ~runs:1 ~rng ~machine ~swp:false loop in
  Alcotest.(check int) "8 factors" 8 (Array.length cycles);
  Array.iter (fun c -> Alcotest.(check bool) "positive" true (c > 0)) cycles

let test_measure_noiseless_deterministic () =
  let loop = Kernels.ddot ~name:"me_det" ~trip:256 in
  let a = Measure.sweep ~noise:0.0 ~runs:1 ~rng:(Rng.create 1) ~machine ~swp:false loop in
  let b = Measure.sweep ~noise:0.0 ~runs:1 ~rng:(Rng.create 2) ~machine ~swp:false loop in
  Alcotest.(check (array int)) "noise-free ignores rng" a b

let test_measure_noise_bounded () =
  let loop = Kernels.dscal ~name:"me_noise" ~trip:256 in
  let exact = Measure.sweep ~noise:0.0 ~runs:1 ~rng:(Rng.create 1) ~machine ~swp:false loop in
  let noisy = Measure.sweep ~noise:0.02 ~runs:15 ~rng:(Rng.create 1) ~machine ~swp:false loop in
  Array.iteri
    (fun i c ->
      let r = float_of_int noisy.(i) /. float_of_int c in
      Alcotest.(check bool) "within 5%" true (r > 0.95 && r < 1.05))
    exact

let test_measure_median_reduces_noise () =
  let rng = Rng.create 9 in
  let v = Measure.noisy_median ~rng ~noise:0.05 ~runs:31 (fun () -> 1_000_000) in
  Alcotest.(check bool) "median near exact" true (abs (v - 1_000_000) < 30_000)

let test_measure_filter_constant () =
  Alcotest.(check int) "50k threshold" 50_000 Measure.min_cycles_filter

(* --- QCheck: simulation sanity over random loops --- *)

let synth_gen =
  QCheck.Gen.(
    let* seed = 0 -- 20000 in
    let* f = 1 -- 8 in
    let* swp = bool in
    let rng = Rng.create seed in
    let profile = if seed mod 2 = 0 then Synth.media else Synth.fp_numeric in
    return (Synth.generate rng profile ~name:(Printf.sprintf "qm%d" seed), f, swp))

let prop_sim_positive_and_deterministic =
  QCheck.Test.make ~count:60 ~name:"simulation positive and deterministic"
    (QCheck.make synth_gen)
    (fun (l, f, swp) ->
      let exe = Simulator.compile machine ~swp l f in
      let st = Simulator.create_state machine in
      let a = Simulator.run ~max_sim_iters:100 st exe in
      Simulator.reset_state st;
      let b = Simulator.run ~max_sim_iters:100 st exe in
      a > 0 && a = b)

let base_suite =
  [
    ("cache hit after access", `Quick, test_cache_hit_after_access);
    ("cache lru eviction", `Quick, test_cache_lru_eviction);
    ("cache probe no allocate", `Quick, test_cache_probe_no_allocate);
    ("cache reset", `Quick, test_cache_reset);
    ("cache sets isolate", `Quick, test_cache_sets_isolate);
    ("cache geometry", `Quick, test_cache_geometry);
    ("sim deterministic", `Quick, test_sim_deterministic);
    ("sim workload scales", `Quick, test_sim_more_work_more_cycles);
    ("sim unrolling helps", `Quick, test_sim_unrolling_helps_streaming);
    ("sim chase immune", `Quick, test_sim_unrolling_useless_for_chase);
    ("sim swp helps recurrence", `Quick, test_sim_swp_helps_recurrence);
    ("sim outer trip scales", `Quick, test_sim_outer_trip_scales);
    ("sim exit shortens", `Quick, test_sim_exit_shortens);
    ("sim code footprint", `Quick, test_sim_code_footprint_costs);
    ("sim executable structure", `Quick, test_sim_executable_structure);
    ("sim extrapolation", `Quick, test_sim_extrapolation_close);
    ("measure sweep shape", `Quick, test_measure_sweep_shape);
    ("measure noiseless deterministic", `Quick, test_measure_noiseless_deterministic);
    ("measure noise bounded", `Quick, test_measure_noise_bounded);
    ("measure median", `Quick, test_measure_median_reduces_noise);
    ("measure filter constant", `Quick, test_measure_filter_constant);
    QCheck_alcotest.to_alcotest prop_sim_positive_and_deterministic;
  ]

(* --- additional edge cases --- *)

let test_sim_zero_trip_kernel () =
  (* A loop shorter than the factor: kernel runs zero times, the remainder
     carries everything, and simulation still terminates with sane cost. *)
  let loop = Kernels.daxpy ~name:"sim_zero" ~trip:3 in
  let exe = Simulator.compile machine ~swp:false loop 8 in
  let st = Simulator.create_state machine in
  let c = Simulator.run st exe in
  Alcotest.(check bool) "positive but small" true (c > 0 && c < 10_000)

let test_sweep_same_rng_same_result () =
  let loop = Kernels.dscal ~name:"sim_rng" ~trip:128 in
  let a = Measure.sweep ~noise:0.01 ~runs:7 ~rng:(Rng.create 99) ~machine ~swp:false loop in
  let b = Measure.sweep ~noise:0.01 ~runs:7 ~rng:(Rng.create 99) ~machine ~swp:false loop in
  Alcotest.(check (array int)) "noisy but reproducible" a b

let test_sim_compile_all_machines () =
  List.iter
    (fun m ->
      let loop = Kernels.stencil3 ~name:("sim_" ^ m.Machine.mach_name) ~trip:64 in
      List.iter
        (fun swp ->
          let exe = Simulator.compile m ~swp loop 4 in
          let st = Simulator.create_state m in
          Alcotest.(check bool)
            (m.Machine.mach_name ^ " runs")
            true
            (Simulator.run st exe > 0))
        [ false; true ])
    Machine.all

let edge_tests =
  [
    ("sim zero-trip kernel", `Quick, test_sim_zero_trip_kernel);
    ("sweep rng reproducible", `Quick, test_sweep_same_rng_same_result);
    ("sim all machines", `Quick, test_sim_compile_all_machines);
  ]

let suite = base_suite @ edge_tests
