(* quick sanity for the new Parallel runtime *)
let () =
  (* basic map determinism *)
  let seq = Parallel.map ~jobs:1 (fun x -> x * x) (Array.init 1000 Fun.id) in
  let par = Parallel.map ~jobs:4 (fun x -> x * x) (Array.init 1000 Fun.id) in
  assert (seq = par);
  (* nested *)
  let nested j =
    Parallel.tabulate ~jobs:j 20 (fun i ->
        let inner = Parallel.tabulate ~jobs:2 10 (fun k -> (i * 31) + k) in
        Array.fold_left ( + ) 0 inner)
  in
  assert (nested 1 = nested 4);
  (* fork_join *)
  let a, b = Parallel.fork_join (fun () -> 1 + 1) (fun () -> "x" ^ "y") in
  assert (a = 2 && b = "xy");
  (* exceptions: first by index *)
  (try
     ignore (Parallel.map ~jobs:4 (fun i -> if i mod 3 = 0 then failwith (string_of_int i) else i) (Array.init 100 Fun.id));
     assert false
   with Failure s -> assert (s = "0"));
  (* skew: steal counters move *)
  let t0 = Telemetry.counter Telemetry.global ~pass:"parallel" "steals" in
  let busy n = let r = ref 0 in for i = 1 to n do r := !r + i done; Sys.opaque_identity !r in
  ignore (Parallel.map ~jobs:2 (fun i -> if i < 32 then busy 2_000_000 else busy 100) (Array.init 64 Fun.id));
  let t1 = Telemetry.counter Telemetry.global ~pass:"parallel" "steals" in
  Printf.printf "steals during skewed map: %d\n" (t1 - t0);
  Printf.printf "tasks=%d batches=%d\n"
    (Telemetry.counter Telemetry.global ~pass:"parallel" "tasks")
    (Telemetry.counter Telemetry.global ~pass:"parallel" "batches");
  print_endline "smoke ok"
