let machine = Machine.itanium2
let () =
  let b = Builder.create ~lang:Loop.Fortran ~name:"sm_best" ~trip:4096 ~nest_level:2
      ~outer_trip:32 () in
  let x = Builder.add_array b ~length:4112 "x" in
  let v = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
  Builder.store b ~array:x ~stride:1 ~offset:0 (Builder.fmul b [ v; v ]);
  let loop = Builder.finish b in
  List.iter (fun strip ->
    let exe = Strip_mine.executable machine ~swp:false loop ~strip ~unroll:4 in
    let st = Simulator.create_state machine in
    ignore (Simulator.run st exe);
    Printf.printf "strip %d: %d (chunks=%d extra=%d)\n" strip (Simulator.run st exe)
      (List.length exe.Simulator.schedules) exe.Simulator.entry_extra_cycles)
    [256; 512; 1024; 2048; 4096]
