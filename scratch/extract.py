import re,sys
t=open('/root/repo/bench_output.txt').read()
# pull the summary table rows
m=re.search(r'Summary: paper claim vs this reproduction.*?\n(\+.*?\n\+[-+]*\+\n)', t, re.S)
print(t[t.find('Summary: paper claim'):t.find('Summary: paper claim')+2000] if 'Summary' in t else 'no summary yet')
