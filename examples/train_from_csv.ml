(* Train from released data: the workflow the paper enabled for others.

   "We have also released the instrumentation library that we wrote and
   the raw loop data that we collected so other researchers can easily
   apply their own learning techniques." (§2)

   This example plays the role of one of those other researchers: it never
   touches the compiler or the simulator.  It labels a workload once and
   exports it to CSV (what our `unroll-ml dataset` command produces), then
   — pretending to be a downstream user — loads the CSV, splits it by
   benchmark, and compares four "own learning techniques" on it: NN, the
   LS-SVM, a single decision tree, and boosted trees.

   Run with: dune exec examples/train_from_csv.exe *)

let () =
  let config = { Config.fast with Config.scale = 0.15; runs = 5 } in
  let csv = Filename.temp_file "unrollml_released" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove csv)
    (fun () ->
      (* --- producer side: what `unroll-ml dataset -o FILE` does --- *)
      Printf.eprintf "labelling and exporting (about a minute)...\n%!";
      let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
      let labeled = Labeling.collect config ~swp:false benchmarks in
      Dataset.to_csv (Labeling.to_dataset config labeled) csv;

      (* --- consumer side: a researcher with only the CSV --- *)
      let ds = Dataset.of_csv csv in
      Printf.printf "loaded %d labelled loops with %d features from %s\n"
        (Dataset.size ds)
        (Array.length ds.Dataset.feature_names)
        (Filename.basename csv);
      let scaled = Scale.apply (Scale.fit ds) ds in
      let pairs = Dataset.points scaled in
      let groups = Array.map (fun (e : Dataset.example) -> e.Dataset.group) scaled.Dataset.examples in

      (* Split by benchmark, as the paper's speedup experiments do. *)
      let nn_pred =
        Loocv.grouped ~groups
          ~train:(Knn.train ~radius:config.Config.knn_radius ~n_classes:8)
          ~predict:Knn.predict pairs
      in
      let svm_pred =
        Loocv.grouped ~groups
          ~train:(Multiclass.train ~n_classes:8 ~kernel:config.Config.svm_kernel
                    ~gamma:config.Config.svm_gamma)
          ~predict:Multiclass.predict pairs
      in
      let tree_pred =
        Loocv.grouped ~groups
          ~train:(Decision_tree.train ~n_classes:8)
          ~predict:Decision_tree.predict pairs
      in
      let boost_pred =
        Loocv.grouped ~groups
          ~train:(Boost.train ~rounds:15 ~n_classes:8)
          ~predict:Boost.predict pairs
      in
      let truth = Dataset.labels scaled in
      let costs = Array.map (fun (e : Dataset.example) -> e.Dataset.costs) scaled.Dataset.examples in
      Printf.printf "\n%-16s %10s %14s %12s\n" "classifier" "optimal" "opt-or-2nd" "cost vs opt";
      List.iter
        (fun (name, pred) ->
          let rank = Metrics.rank_distribution ~pred ~costs in
          Printf.printf "%-16s %9.1f%% %13.1f%% %11.3fx\n" name
            (100.0 *. Metrics.accuracy ~pred ~truth)
            (100.0 *. (rank.(0) +. rank.(1)))
            (Metrics.mean_cost_ratio ~pred ~costs))
        [
          ("near neighbor", nn_pred);
          ("LS-SVM", svm_pred);
          ("decision tree", tree_pred);
          ("boosted trees", boost_pred);
        ];
      print_endline
        "\neverything above used only the CSV - no compiler, no simulator:\n\
         exactly the hand-off the paper's data release was for.")
