(* Loop tiling — the paper's named future work, realized.

   "Now that our infrastructure is in place, we are in the position to
   create heuristics for other loop optimizations such as loop tiling and
   strip mining." (§4.5/§10)

   A loop that re-traverses a larger-than-L1 array on every outer entry
   thrashes; running every outer repetition of one cache-sized strip before
   moving on (tiling) keeps the strip hot.  This example sweeps strip sizes
   for such loops, shows the classic U-curve, and then plays the paper's
   game: the empirically best strip is the label a learned heuristic would
   train on, and it lines up with what the loop's footprint predicts.

   Run with: dune exec examples/tiling.exe *)

let machine = Machine.itanium2

let reuse_loop ~name ~trip ~outer =
  let b = Builder.create ~lang:Loop.Fortran ~name ~trip ~nest_level:2 ~outer_trip:outer () in
  let x = Builder.add_array b ~length:(trip + 16) "x" in
  let y = Builder.add_array b ~length:(trip + 16) "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:Op.Flt ~array:y ~stride:1 ~offset:0 () in
  Builder.store b ~array:y ~stride:1 ~offset:0 (Builder.fmadd b [ a; xv; yv ]);
  Builder.finish b

let sweep name loop =
  Printf.printf "\n%s: trip=%d outer=%d, data footprint %dKB (L1D %dKB)\n" name
    loop.Loop.trip_actual loop.Loop.outer_trip
    (Array.fold_left (fun acc (a : Loop.array_info) -> acc + (a.Loop.elem_size * a.Loop.length)) 0
       loop.Loop.arrays
    / 1024)
    (machine.Machine.l1d.Machine.size_bytes / 1024);
  let baseline =
    let exe = Simulator.compile machine ~swp:false loop 4 in
    let st = Simulator.create_state machine in
    ignore (Simulator.run st exe);
    Simulator.run st exe
  in
  Printf.printf "  untiled (u=4): %d cycles\n" baseline;
  let candidates = [ 64; 128; 256; 512; 1024; 2048; 4096 ] in
  List.iter
    (fun strip ->
      if strip <= loop.Loop.trip_actual then begin
        let exe = Strip_mine.executable machine ~swp:false loop ~strip ~unroll:4 in
        let st = Simulator.create_state machine in
        ignore (Simulator.run st exe);
        let cycles = Simulator.run st exe in
        Printf.printf "  strip %5d: %9d cycles (%.2fx)\n" strip cycles
          (float_of_int baseline /. float_of_int cycles)
      end)
    candidates;
  let best, cycles =
    Strip_mine.best_strip machine ~swp:false loop
      ~candidates:(List.filter (fun s -> s <= loop.Loop.trip_actual) candidates)
      ~unroll:4
  in
  Printf.printf "  -> best strip %d (%d cycles, %.2fx over untiled)\n" best cycles
    (float_of_int baseline /. float_of_int cycles);
  best

let () =
  (* Arrays of 8 KB, 32 KB and 128 KB against a 16 KB L1D: only the loops
     that overflow the cache should want small strips. *)
  let cases =
    [
      ("fits-in-L1", reuse_loop ~name:"fits" ~trip:512 ~outer:64);
      ("2x-L1", reuse_loop ~name:"twice" ~trip:2048 ~outer:64);
      ("8x-L1", reuse_loop ~name:"eight" ~trip:8192 ~outer:64);
    ]
  in
  let picks = List.map (fun (n, l) -> (n, sweep n l)) cases in
  print_endline "\nempirically-best strips (the labels a strip heuristic would learn):";
  List.iter (fun (n, s) -> Printf.printf "  %-10s -> %d\n" n s) picks;
  print_endline
    "as the paper promises, collecting these labels is fully automated; the\n\
     same feature vectors + classifiers would learn the footprint rule."
