(* Outlier detection via near-neighbor confidence (paper §5.1).

   "One can imagine a tool that automatically detects outliers by setting
   low confidence examples aside.  An engineer could then visually inspect
   outlier loops to determine why they are hard to classify."

   This is that tool: it labels a suite, computes the NN vote confidence of
   every example under leave-one-out, and prints the least-confident loops
   together with the structural reasons they sit far from their neighbors.

   Run with: dune exec examples/outliers.exe *)

let () =
  let config = { Config.fast with Config.scale = 0.15; runs = 5 } in
  Printf.eprintf "labelling...\n%!";
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let labeled = Labeling.collect config ~swp:false benchmarks in
  let kept = List.filter Labeling.passes_filters (Array.to_list labeled) in
  let dataset = Labeling.to_dataset config labeled in
  let scaled = Scale.apply (Scale.fit dataset) dataset in
  let pairs = Dataset.points scaled in
  let knn = Knn.train ~radius:config.Config.knn_radius ~n_classes:8 pairs in

  let scored =
    List.mapi
      (fun i (l : Labeling.labeled) ->
        (* Leave-one-out confidence: classify each point against the rest. *)
        let rest =
          Array.of_list
            (List.filteri (fun j _ -> j <> i) (Array.to_list pairs))
        in
        let knn_rest =
          Knn.train ~radius:(Knn.radius knn) ~n_classes:8 rest
        in
        let pred, conf = Knn.predict_confidence knn_rest (fst pairs.(i)) in
        (l, pred + 1, conf))
      kept
  in
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare a b) scored in
  Printf.printf "%d loops; least-confident classifications:\n\n" (List.length sorted);
  List.iteri
    (fun i ((l : Labeling.labeled), pred, conf) ->
      if i < 8 then begin
        let loop = l.Labeling.loop in
        Printf.printf "%-34s best=u%d predicted=u%d confidence=%.2f\n"
          loop.Loop.name (Labeling.best_factor l) pred conf;
        Printf.printf
          "    %d ops, %d mem, %d indirect, trip %s, %s%s%s\n"
          (Loop.op_count loop) (Loop.memory_op_count loop)
          (Loop.indirect_ref_count loop)
          (match loop.Loop.trip_static with Some t -> string_of_int t | None -> "unknown")
          (if Loop.has_early_exit loop then "early-exit " else "")
          (if Loop.has_call loop then "call " else "")
          (if loop.Loop.aliased then "may-alias" else "")
      end)
    sorted;
  let high = List.filter (fun (_, _, c) -> c >= 0.75) scored in
  Printf.printf
    "\n%d of %d loops classify with confidence >= 0.75; the outliers above\n\
     are the ones an engineer would inspect by hand.\n"
    (List.length high) (List.length scored)
