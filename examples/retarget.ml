(* Retargeting: the §4.5 claim.

   "Now that our infrastructure is in place, quickly retuning the unrolling
   heuristic to match architectural changes will be trivial.  We will
   simply have to collect a new labeled dataset ... and then we can apply
   the learning algorithm of our choice."

   This example does exactly that for two very different machines — the
   default Itanium-2-like model and a narrow embedded core — and shows
   that (a) the optimal-factor distribution shifts, and (b) a classifier
   trained for one machine loses accuracy on the other, while retraining
   on the new machine's labels recovers it.  The hand heuristic, tuned for
   the first machine, cannot follow.

   Run with: dune exec examples/retarget.exe *)

let label_for machine =
  let config = { Config.fast with Config.scale = 0.12; runs = 5; machine } in
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let labeled = Labeling.collect config ~swp:false benchmarks in
  (config, Labeling.to_dataset config labeled)

let histogram ds =
  let counts = Array.make 8 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) (Dataset.labels ds);
  String.concat " "
    (Array.to_list
       (Array.mapi
          (fun i c ->
            Printf.sprintf "u%d:%d%%" (i + 1)
              (100 * c / max 1 (Dataset.size ds)))
          counts))

let nn_accuracy config train test =
  let features = Array.init Features.count (fun i -> i) in
  let model = Predictor.train_nn config ~features train in
  let pred =
    Array.map
      (fun (e : Dataset.example) ->
        (* Re-extraction needs the loop, which we no longer have here, so
           classify directly in feature space. *)
        match model with
        | Predictor.Nn { nn_model; nn_scaler; nn_features } ->
          let x = Array.map (fun j -> e.Dataset.features.(j)) nn_features in
          Knn.predict nn_model (Scale.transform nn_scaler x)
        | _ -> assert false)
      test.Dataset.examples
  in
  Metrics.accuracy ~pred ~truth:(Dataset.labels test)

let () =
  print_endline "labelling the same workload for two machines...";
  let config_a, ds_a = label_for Machine.itanium2 in
  let config_b, ds_b = label_for Machine.embedded2 in
  Printf.printf "itanium2  (%3d loops): %s\n" (Dataset.size ds_a) (histogram ds_a);
  Printf.printf "embedded2 (%3d loops): %s\n" (Dataset.size ds_b) (histogram ds_b);

  (* The feature vectors are machine-relative (critical path, cycle
     estimates), so evaluate everything in the target machine's features:
     ds_b's features with ds_a's labels is exactly "yesterday's heuristic
     on today's machine". *)
  let mismatched =
    (* pair machine-B features with machine-A labels, matching by loop tag *)
    let by_tag = Hashtbl.create 256 in
    Array.iter (fun (e : Dataset.example) -> Hashtbl.replace by_tag e.Dataset.tag e) ds_a.Dataset.examples;
    {
      ds_b with
      Dataset.examples =
        Array.of_list
          (List.filter_map
             (fun (e : Dataset.example) ->
               match Hashtbl.find_opt by_tag e.Dataset.tag with
               | Some a -> Some { e with Dataset.label = a.Dataset.label }
               | None -> None)
             (Array.to_list ds_b.Dataset.examples));
    }
  in
  Printf.printf
    "\nNN trained on itanium2 labels, asked about embedded2 loops: %.1f%% optimal\n"
    (100.0 *. nn_accuracy config_a mismatched ds_b);
  Printf.printf "NN retrained on embedded2 labels (LOOCV):              %.1f%% optimal\n"
    (let features = Array.init Features.count (fun i -> i) in
     let ds = Dataset.select_features ds_b features in
     let scaled = Scale.apply (Scale.fit ds) ds in
     let knn =
       Knn.train ~radius:config_b.Config.knn_radius ~n_classes:8 (Dataset.points scaled)
     in
     100.0 *. Metrics.accuracy ~pred:(Knn.loo_predictions knn) ~truth:(Dataset.labels scaled));
  print_endline
    "\nCollecting the new labels was the only manual step, as §4.5 promises."
