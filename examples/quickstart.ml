(* Quickstart: the full workflow of the paper on a small scale.

   1. Build a loop with the IR builder.
   2. Generate a training suite, label it by measuring every unroll factor
      through the simulated Itanium-2 testbed.
   3. Train the near-neighbor and LS-SVM classifiers.
   4. Predict an unroll factor for the new loop and check the prediction
      against a direct measurement sweep.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let config = { Config.fast with Config.scale = 0.08; runs = 5 } in
  let machine = config.Config.machine in

  (* --- 1. a brand-new loop: y[i] = a*x[i] + y[i] over 256 elements --- *)
  let b = Builder.create ~lang:Loop.Fortran ~name:"my_daxpy" ~trip:256 () in
  let x = Builder.add_array b ~length:272 "x" in
  let y = Builder.add_array b ~length:272 "y" in
  let a = Builder.freg b in
  let xv = Builder.load b ~cls:Op.Flt ~array:x ~stride:1 ~offset:0 () in
  let yv = Builder.load b ~cls:Op.Flt ~array:y ~stride:1 ~offset:0 () in
  let r = Builder.fmadd b [ a; xv; yv ] in
  Builder.store b ~array:y ~stride:1 ~offset:0 r;
  let loop = Builder.finish b in
  Format.printf "Our loop:@.%a@." Pretty.pp_loop loop;

  (* --- 2. training data: generate a suite and label it --- *)
  print_endline "Labelling a small training suite (this takes a few seconds)...";
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let labeled = Labeling.collect config ~swp:false benchmarks in
  let dataset = Labeling.to_dataset config labeled in
  Printf.printf "training examples after filters: %d\n%!" (Dataset.size dataset);

  (* --- 3. train both classifiers on every feature --- *)
  let all_features = Array.init Features.count (fun i -> i) in
  let nn = Predictor.train_nn config ~features:all_features dataset in
  let svm = Predictor.train_svm config ~features:all_features dataset in

  (* --- 4. predict, then verify against ground truth --- *)
  let u_nn = Predictor.predict nn config ~swp:false loop in
  let u_svm = Predictor.predict svm config ~swp:false loop in
  let u_orc = Orc_heuristic.predict machine ~swp:false loop in
  Printf.printf "NN predicts u=%d, SVM predicts u=%d, ORC heuristic picks u=%d\n" u_nn u_svm u_orc;

  let rng = Rng.create 1 in
  let cycles = Measure.sweep ~noise:0.0 ~runs:1 ~rng ~machine ~swp:false loop in
  print_endline "measured cycles per factor:";
  Array.iteri (fun i c -> Printf.printf "  u=%d: %d%s\n" (i + 1) c
      (if i = Stats.min_index (Array.map float_of_int cycles) then "  <- best" else ""))
    cycles;
  let best = 1 + Stats.min_index (Array.map float_of_int cycles) in
  let penalty u =
    float_of_int cycles.(u - 1) /. float_of_int cycles.(best - 1)
  in
  Printf.printf "prediction penalties vs optimal: NN %.3fx, SVM %.3fx, ORC %.3fx\n"
    (penalty u_nn) (penalty u_svm) (penalty u_orc)
