(* Why-is-this-loop-slow: the profiling view of unrolling decisions.

   For a handful of contrasting kernels, print where the cycles go at each
   unroll factor — schedule issue, data stalls, instruction fetch, branch
   overhead, loop-entry overhead, pipeline fill — plus the schedule and
   unit occupancy at the interesting factors.  This is the evidence trail
   behind every label the classifiers learn from.

   Run with: dune exec examples/why_slow.exe *)

let machine = Machine.itanium2

let profile_kernel (name, maker) =
  let loop = maker ~name ~trip:256 in
  Printf.printf "\n=== %s ===\n" name;
  Printf.printf "%3s %9s %8s %8s %8s %8s %8s %7s\n" "u" "cycles" "issue"
    "data" "fetch" "branch" "entry" "fill";
  List.iter
    (fun u ->
      let exe = Simulator.compile machine ~swp:false loop u in
      let st = Simulator.create_state machine in
      ignore (Simulator.run st exe);
      let cycles, stats = Simulator.run_profiled st exe in
      Printf.printf "%3d %9d %8d %8d %8d %8d %8d %7d\n" u cycles
        stats.Simulator.issue_cycles stats.Simulator.data_stall_cycles
        stats.Simulator.fetch_stall_cycles stats.Simulator.branch_cycles
        stats.Simulator.entry_overhead_cycles stats.Simulator.pipeline_fill_cycles)
    [ 1; 2; 4; 8 ];
  (* Show the schedule at u=4 with unit occupancy. *)
  let u4 = Unroll.run loop 4 in
  let kernel = (Rle.run u4.Unroll.kernel).Rle.loop in
  let sched = List_sched.schedule machine kernel in
  print_string (Sched_pretty.render sched);
  print_string (Sched_pretty.render_occupancy sched);
  match Modulo_sched.schedule machine kernel with
  | Some swp ->
    Printf.printf "software pipelined:\n%s" (Sched_pretty.render swp)
  | None -> print_endline "(not software-pipelinable)"

let () =
  List.iter profile_kernel
    [
      ("daxpy", Kernels.daxpy);          (* streaming: fetch/branch amortise *)
      ("ddot", Kernels.ddot);            (* recurrence-bound: data stalls stay *)
      ("fp_divide", Kernels.fp_divide);  (* divider-bound: issue saturates *)
      ("gather", Kernels.gather);        (* indirect: data stalls dominate *)
    ]
