(* Feature study: which loop characteristics actually predict the best
   unroll factor?  Reproduces the paper's §7 methodology on a reduced
   dataset: mutual information scores, then greedy forward selection for
   both classifiers, then a comparison of classification accuracy with all
   38 features vs the selected subset — the paper's observation that a
   well-chosen subset beats the full set.

   Run with: dune exec examples/feature_study.exe *)

let () =
  let config = { Config.fast with Config.scale = 0.2; runs = 5 } in
  Printf.eprintf "labelling (a minute or so at this scale)...\n%!";
  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in
  let labeled = Labeling.collect config ~swp:false benchmarks in
  let dataset = Labeling.to_dataset config labeled in
  Printf.printf "dataset: %d loops, %d features\n\n" (Dataset.size dataset) Features.count;

  (* --- mutual information --- *)
  let ranked = Mis.rank dataset in
  print_endline "top 10 features by mutual information score:";
  Array.iteri
    (fun i (j, s) ->
      if i < 10 then
        Printf.printf "  %2d. %-26s %.3f bits\n" (i + 1) dataset.Dataset.feature_names.(j) s)
    ranked;

  (* --- greedy selection --- *)
  let scaled = Scale.apply (Scale.fit dataset) dataset in
  let nn_picks =
    Greedy_select.run ~n_features:Features.count ~k:5
      (Greedy_select.nn_training_error scaled)
  in
  print_endline "\ngreedy selection for 1-NN (feature, training error so far):";
  List.iter
    (fun (j, e) -> Printf.printf "  %-26s %.3f\n" dataset.Dataset.feature_names.(j) e)
    nn_picks;
  let svm_picks =
    Greedy_select.run ~n_features:Features.count ~k:5
      
        (Greedy_select.svm_training_error ~kernel:config.Config.svm_kernel
           ~gamma:config.Config.svm_gamma ~max_examples:250 scaled)
  in
  print_endline "greedy selection for the SVM:";
  List.iter
    (fun (j, e) -> Printf.printf "  %-26s %.3f\n" dataset.Dataset.feature_names.(j) e)
    svm_picks;

  (* --- does the reduced feature set help? --- *)
  let union =
    List.sort_uniq compare
      (List.map fst nn_picks
      @ List.map fst svm_picks
      @ List.map fst (List.filteri (fun i _ -> i < 5) (Array.to_list ranked)))
  in
  let eval features =
    let ds0 = Dataset.select_features dataset (Array.of_list features) in
    let ds = Scale.apply (Scale.fit ds0) ds0 in
    let pairs = Dataset.points ds in
    let nn = Knn.train ~radius:config.Config.knn_radius ~n_classes:8 pairs in
    Metrics.accuracy ~pred:(Knn.loo_predictions nn) ~truth:(Dataset.labels ds)
  in
  let all = List.init Features.count (fun i -> i) in
  Printf.printf
    "\nNN LOOCV accuracy with all %d features: %.1f%%\n\
     NN LOOCV accuracy with the %d selected:  %.1f%%\n"
    Features.count
    (100.0 *. eval all)
    (List.length union)
    (100.0 *. eval union)
