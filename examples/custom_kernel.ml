(* Custom kernel walk-through: a 2D 5-point stencil row sweep, compiled at
   every unroll factor in both pipeline modes, showing exactly where the
   performance comes from — schedule length, software-pipelined II,
   spills, code growth, cache behaviour.

   Run with: dune exec examples/custom_kernel.exe *)

let build_stencil_row ~trip =
  let b =
    Builder.create ~lang:Loop.Fortran ~name:"stencil5_row" ~trip ~nest_level:2
      ~outer_trip:64 ()
  in
  let grid = Builder.add_array b ~length:(3 * (trip + 16)) "grid" in
  let out = Builder.add_array b ~length:(trip + 16) "out" in
  let c = Builder.freg b in
  (* north / west / centre / east / south of a row-major 2D grid *)
  let w = Builder.load b ~cls:Op.Flt ~array:grid ~stride:1 ~offset:(trip + 15) () in
  let ctr = Builder.load b ~cls:Op.Flt ~array:grid ~stride:1 ~offset:(trip + 16) () in
  let e = Builder.load b ~cls:Op.Flt ~array:grid ~stride:1 ~offset:(trip + 17) () in
  let n = Builder.load b ~cls:Op.Flt ~array:grid ~stride:1 ~offset:0 () in
  let s = Builder.load b ~cls:Op.Flt ~array:grid ~stride:1 ~offset:(2 * (trip + 16)) () in
  let s1 = Builder.fadd b [ w; e ] in
  let s2 = Builder.fadd b [ n; s ] in
  let s3 = Builder.fadd b [ s1; s2 ] in
  let s4 = Builder.fmadd b [ ctr; c; s3 ] in
  Builder.store b ~array:out ~stride:1 ~offset:0 s4;
  Builder.finish b

let () =
  let machine = Machine.itanium2 in
  let loop = build_stencil_row ~trip:256 in
  Format.printf "%a@." Pretty.pp_loop loop;

  List.iter
    (fun swp ->
      Printf.printf "\n--- software pipelining %s ---\n"
        (if swp then "ENABLED" else "DISABLED");
      Printf.printf "%3s %12s %-28s %7s %7s\n" "u" "cycles" "schedule" "spills" "code";
      let best = ref (1, max_int) in
      for u = 1 to Unroll.max_factor do
        let exe = Simulator.compile machine ~swp loop u in
        let state = Simulator.create_state machine in
        ignore (Simulator.run state exe);
        let cycles = Simulator.run state exe in
        if cycles < snd !best then best := (u, cycles);
        let kind =
          match exe.Simulator.schedules with
          | (s, _, _) :: _ -> begin
            match s.Schedule.kind with
            | Schedule.Straight ->
              Printf.sprintf "straight, %d-cycle body" s.Schedule.length
            | Schedule.Pipelined { ii; stages } ->
              Printf.sprintf "pipelined, II=%d (%d stages)" ii stages
          end
          | [] -> "?"
        in
        Printf.printf "%3d %12d %-28s %7d %6dB\n" u cycles kind exe.Simulator.total_spills
          exe.Simulator.total_code_bytes
      done;
      let u, cycles = !best in
      Printf.printf "best factor: u=%d (%d cycles); ORC heuristic would pick u=%d\n" u
        cycles
        (Orc_heuristic.predict machine ~swp loop);
      (* Redundant-load elimination is what makes unrolled stencils fly:
         neighbouring replicas reload the same grid cells. *)
      if not swp then begin
        let unrolled = Unroll.run loop 4 in
        let rle = Rle.run unrolled.Unroll.kernel in
        Printf.printf
          "at u=4, redundant-load elimination removed %d loads and %d dead stores\n"
          rle.Rle.loads_eliminated rle.Rle.stores_eliminated
      end)
    [ false; true ]
