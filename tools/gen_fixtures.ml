(* Regenerates the checked-in golden fixtures under test/fixtures/.

   Run from the repo root:

     dune exec tools/gen_fixtures.exe

   The configuration here must stay in lockstep with the CI train-predict
   job (`train --fast --scale 0.05`): CI retrains from scratch and diffs
   its predictions against golden_predictions.txt, so any drift between
   the two configs shows up as a red diff, not a silent mismatch.  Every
   output is a pure function of the config — no timestamps, no
   machine-dependent state — so regeneration on any host is a no-op unless
   the pipeline's behaviour actually changed. *)

let fixture_config = { Config.fast with Config.scale = 0.05; jobs = 2 }

let kernel_loops () = List.map (fun (name, maker) -> maker ~name ~trip:256) Kernels.all

let write_predictions config artifact path =
  let service =
    match Predict_service.create config artifact with
    | Ok s -> s
    | Error e -> failwith ("predict service: " ^ e)
  in
  let loops = kernel_loops () in
  let factors = Predict_service.predict_batch service loops in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iteri
        (fun i (l : Loop.t) -> Printf.fprintf oc "%s %d\n" l.Loop.name factors.(i))
        loops)

let () =
  let dir = "test/fixtures" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let config = fixture_config in
  let journal_path = Filename.concat dir "golden.journal" in
  if Sys.file_exists journal_path then Sys.remove journal_path;
  let journal =
    match Label_store.open_ journal_path with Ok j -> j | Error e -> failwith e
  in
  (* Four trainings, one sweep: the first run fills the journal, the rest
     resume from it entirely. *)
  let train model = Train.run ~progress:true ~journal config ~swp:false ~model in
  let nn_artifact, _ = train Train.Nn in
  let svm_artifact, _ = train Train.Svm in
  let mlp_artifact, _ = train Train.Mlp in
  let best_artifact, report = train Train.Best in
  let journal_records = Label_store.size journal in
  Label_store.close journal;
  Model_artifact.save nn_artifact (Filename.concat dir "golden_nn.artifact");
  Model_artifact.save svm_artifact (Filename.concat dir "golden_svm.artifact");
  Model_artifact.save mlp_artifact (Filename.concat dir "golden_mlp.artifact");
  write_predictions config nn_artifact (Filename.concat dir "golden_nn_predictions.txt");
  write_predictions config svm_artifact (Filename.concat dir "golden_svm_predictions.txt");
  write_predictions config mlp_artifact (Filename.concat dir "golden_mlp_predictions.txt");
  write_predictions config best_artifact (Filename.concat dir "golden_predictions.txt");
  Printf.printf "fixtures written to %s (best = %s, journal %d records, digest %s)\n" dir
    report.Train.chosen journal_records report.Train.dataset_digest
