(* Incremental-training microbenchmarks.

   Three sections, each gated on bit-identity before its timing counts —
   an incremental speedup over a differently-rounded answer is worthless:

   - ridge-system: one appended training point into a standing
     [Lssvm.system] (rank-1 Cholesky bordering + 8 one-vs-rest solves)
     against a cold [system_of_points] + [system_train] at n+1, for
     n in UNROLLML_BENCH_TRAIN_SIZES (default 500,2000,8000).  The
     alphas of all 8 machines must match the cold path bit for bit; the
     target at n=8000 is >= 10x.
   - pairwise-append: one appended example into a committed
     [Pairwise] engine against a rebuild + recommit, gated on
     [nn_loo_error_count] equality for every candidate feature.
   - warm-greedy: [Greedy_select.Warm.nn_run] across growing dataset
     generations against from-scratch [nn_run], gated on identical picks
     (the certification contract: warm output equals batch output).

   Results go to stdout and BENCH_train.json (one JSON object; a CI
   artifact next to BENCH_ml.json and BENCH_par.json). *)

let d = 16
let n_classes = 8
let kernel = Kernel.Rbf 0.05
let gamma = 10.0

let sizes =
  match Sys.getenv_opt "UNROLLML_BENCH_TRAIN_SIZES" with
  | Some s ->
    List.filter_map
      (fun x -> int_of_string_opt (String.trim x))
      (String.split_on_char ',' s)
  | None -> [ 500; 2000; 8000 ]

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Deterministic synthetic workload: per-feature label signal of graded
   strength plus noise, so greedy selection has a clear (but noisy)
   feature ordering — the regime certification is built for — without
   depending on the suite generator. *)
let gen_point st label =
  Array.init d (fun j ->
      (float_of_int label *. 0.8 *. float_of_int j /. float_of_int d)
      +. Random.State.float st 2.0 -. 1.0)

let gen_data st n =
  let labels = Array.init n (fun _ -> Random.State.int st n_classes) in
  let points = Array.map (fun l -> gen_point st l) labels in
  (points, labels)

let targets_of labels n =
  Array.init n_classes (fun c ->
      Array.init n (fun i -> if labels.(i) = c then 1.0 else -1.0))

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v) a b

let machines_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> bits_equal (Lssvm.export x) (Lssvm.export y)) a b

(* --- section 1: ridge system ------------------------------------------- *)

let ridge_point n =
  let st = Random.State.make [| 42; n |] in
  let points, labels = gen_data st (n + 1) in
  let targets = targets_of labels (n + 1) in
  let sys = Lssvm.system_of_points ~kernel ~gamma (Array.sub points 0 n) in
  let inc, t_inc =
    time (fun () ->
        Lssvm.system_append sys points.(n);
        Lssvm.system_train sys targets)
  in
  let full, t_full =
    time (fun () ->
        Lssvm.system_train (Lssvm.system_of_points ~kernel ~gamma points) targets)
  in
  let identical = machines_equal inc full in
  let speedup = t_full /. Float.max t_inc 1e-9 in
  Printf.printf "ridge-system n=%-5d append+train %.4fs | cold retrain %.3fs (%.1fx) | identical=%b\n%!"
    n t_inc t_full speedup identical;
  (n, t_inc, t_full, speedup, identical)

(* --- section 2: pairwise append ---------------------------------------- *)

let pairwise_bench () =
  let n = 4000 in
  let st = Random.State.make [| 43; n |] in
  let points, labels = gen_data st (n + 2) in
  let flat k =
    let a = Array.make (k * d) 0.0 in
    Array.iteri (fun i p -> if i < k then Array.blit p 0 a (i * d) d) points;
    Mat.of_flat k d a
  in
  let commits = [ 0; 3; 7; 11 ] in
  let engine = Pairwise.create (flat n) in
  List.iter (Pairwise.commit engine) commits;
  (* First append pays the one-off capacity doubling (the engine starts at
     exact capacity); the second is the steady-state O(n·committed) cost. *)
  Pairwise.append engine points.(n);
  let (), t_inc = time (fun () -> Pairwise.append engine points.(n + 1)) in
  let rebuilt, t_full =
    time (fun () ->
        let e = Pairwise.create (flat (n + 2)) in
        List.iter (Pairwise.commit e) commits;
        e)
  in
  let labels = Array.sub labels 0 (n + 2) in
  let identical = ref true in
  for c = 0 to d - 1 do
    if not (Pairwise.is_committed engine c) then
      if
        Pairwise.nn_loo_error_count ~cand:c engine ~labels
        <> Pairwise.nn_loo_error_count ~cand:c rebuilt ~labels
      then identical := false
  done;
  if Pairwise.nn_loo_error_count engine ~labels <> Pairwise.nn_loo_error_count rebuilt ~labels
  then identical := false;
  let speedup = t_full /. Float.max t_inc 1e-9 in
  Printf.printf "pairwise     n=%-5d append %.4fs | rebuild+recommit %.3fs (%.1fx) | identical=%b\n%!"
    n t_inc t_full speedup !identical;
  (n, t_inc, t_full, speedup, !identical)

(* --- section 3: warm greedy -------------------------------------------- *)

let dataset_of points labels n =
  let feature_names = Array.init d (Printf.sprintf "f%d") in
  let examples =
    List.init n (fun i ->
        {
          Dataset.features = Array.copy points.(i);
          label = labels.(i);
          tag = Printf.sprintf "loop%d" i;
          group = Printf.sprintf "bench%d" (i / 40);
          costs = Array.make n_classes 0.0;
        })
  in
  Dataset.create ~feature_names ~n_classes examples

let warm_bench () =
  let k = 5 in
  let n0 = 900 and step = 8 and gens = 4 in
  let n_max = n0 + (step * gens) in
  let st = Random.State.make [| 44; n_max |] in
  let points, labels = gen_data st n_max in
  let cache = Greedy_select.Warm.create () in
  let t_warm = ref 0.0 and t_full = ref 0.0 in
  let identical = ref true in
  for g = 0 to gens do
    let n = n0 + (g * step) in
    let ds = dataset_of points labels n in
    let warm, tw = time (fun () -> Greedy_select.Warm.nn_run ~k cache ds) in
    let full, tf = time (fun () -> Greedy_select.nn_run ~k ds) in
    t_warm := !t_warm +. tw;
    t_full := !t_full +. tf;
    if warm <> full then identical := false
  done;
  let speedup = !t_full /. Float.max !t_warm 1e-9 in
  Printf.printf
    "warm-greedy  n=%d..%d (%d gens, k=%d) warm %.3fs | from-scratch %.3fs (%.1fx) | \
     identical=%b (certified %d of %d warm rounds)\n%!"
    n0 n_max gens k !t_warm !t_full speedup !identical
    (Greedy_select.Warm.certified_rounds cache)
    (Greedy_select.Warm.certified_rounds cache + Greedy_select.Warm.full_rounds cache);
  (n_max, !t_warm, !t_full, speedup, !identical)

(* --- driver ------------------------------------------------------------- *)

let json_point (n, t_inc, t_full, speedup, identical) =
  Printf.sprintf
    "{\"n\":%d,\"incremental_s\":%.5f,\"full_s\":%.4f,\"speedup\":%.1f,\"identical\":%b}"
    n t_inc t_full speedup identical

let () =
  let ridge = List.map ridge_point sizes in
  let pairwise = pairwise_bench () in
  let warm = warm_bench () in
  let ok (_, _, _, _, i) = i in
  let identical = List.for_all ok ridge && ok pairwise && ok warm in
  let target_met =
    (* The headline claim: one appended point at the largest size trains
       >= 10x faster than a cold retrain.  Only meaningful at n >= 2000 —
       smaller systems are too fast for the ratio to be stable. *)
    List.for_all
      (fun (n, _, _, speedup, _) -> n < 2000 || speedup >= 10.0)
      ridge
  in
  Printf.printf "bit-identity everywhere: %b | >=10x at large n: %b\n%!" identical target_met;
  let json =
    Printf.sprintf
      "{\"bench\":\"incremental-training\",\"identical\":%b,\"target_met\":%b,\
       \"ridge\":[%s],\"pairwise\":%s,\"warm_greedy\":%s}"
      identical target_met
      (String.concat "," (List.map json_point ridge))
      (json_point pairwise) (json_point warm)
  in
  print_endline json;
  let oc = open_out "BENCH_train.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  if not (identical && target_met) then exit 1
