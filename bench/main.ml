(* The reproduction harness.

   Regenerates every table and figure from the paper's evaluation —
   Figures 1–5 and Tables 2–4 — against the simulated testbed, then runs
   Bechamel microbenchmarks for the timing claims the paper makes in §5
   (near-neighbor lookup under 5 ms over 2,500 examples; SVM training about
   30 seconds; classifier training time irrelevant next to compile time).

   Scale: the default configuration matches the paper (72 benchmarks,
   ~2,500 surviving loops).  Set FAST=1 for a reduced run. *)

open Bechamel
open Toolkit

let hr title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

(* ---------------- experiment reproduction ---------------- *)

let run_experiments env =
  hr "Figure 1 (NN on LDA-projected loops)";
  print_string (Experiments.fig1 env);
  hr "Figure 2 (SVM decision regions)";
  print_string (Experiments.fig2 env);
  hr "Figure 3 (optimal unroll factor histogram)";
  print_string (Experiments.fig3 env);
  hr "Table 2 (prediction accuracy, LOOCV)";
  print_string (Experiments.table2 env);
  hr "Table 3 (mutual information scores)";
  print_string (Experiments.table3 env);
  hr "Table 4 (greedy feature selection)";
  print_string (Experiments.table4 env);
  hr "Figure 4 (speedups, SWP disabled)";
  print_string (Experiments.fig4 env);
  hr "Figure 5 (speedups, SWP enabled)";
  print_string (Experiments.fig5 env);
  hr "Summary (paper vs reproduction)";
  print_string (Experiments.summary env);
  hr "Ablations (design choices beyond the paper's tables)";
  print_string (Experiments.ablations env)

(* ---------------- microbenchmarks ---------------- *)

let microbench_tests env =
  let config = env.Experiments.config in
  let ds = Dataset.select_features env.Experiments.dataset_off env.Experiments.selected in
  let scaler = Scale.fit ds in
  let scaled = Scale.apply scaler ds in
  let pairs = Dataset.points scaled in
  let nn = Knn.train ~radius:config.Config.knn_radius ~n_classes:8 pairs in
  let svm_pairs =
    (* cap the trained model so the prediction benchmark finishes quickly
       even at full scale *)
    Array.sub pairs 0 (min (Array.length pairs) 800)
  in
  let svm =
    Multiclass.train ~n_classes:8 ~kernel:config.Config.svm_kernel
      ~gamma:config.Config.svm_gamma svm_pairs
  in
  let query = fst pairs.(Array.length pairs / 2) in
  let sample_loop = Kernels.stencil5 ~name:"bench_loop" ~trip:128 in
  let machine = config.Config.machine in
  let train_pairs = Array.sub pairs 0 (min (Array.length pairs) 300) in
  [
    (* §5.1: "with over 2,500 examples in our database, the linear-time
       scan takes less than 5 ms". *)
    Test.make
      ~name:(Printf.sprintf "nn-lookup-%d" (Array.length pairs))
      (Staged.stage (fun () -> Knn.predict nn query));
    Test.make
      ~name:(Printf.sprintf "svm-predict-%d" (Array.length svm_pairs))
      (Staged.stage (fun () -> Multiclass.predict svm query));
    (* NN "training" is just populating the database. *)
    Test.make
      ~name:(Printf.sprintf "nn-train-%d" (Array.length pairs))
      (Staged.stage (fun () -> Knn.train ~radius:0.5 ~n_classes:8 pairs));
    (* §5.2: SVM training took ~30 s in Matlab on their 2,500 examples; an
       O(N^3) solve, benchmarked here at N=300. *)
    Test.make
      ~name:(Printf.sprintf "svm-train-%d" (Array.length train_pairs))
      (Staged.stage (fun () ->
           Multiclass.train ~n_classes:8 ~kernel:config.Config.svm_kernel
             ~gamma:config.Config.svm_gamma train_pairs));
    (* The compile-time cost of consulting the learned heuristic is
       dominated by everything else the compiler does per loop: *)
    Test.make ~name:"feature-extraction"
      (Staged.stage (fun () -> Features.extract machine sample_loop));
    Test.make ~name:"compile-u4-list"
      (Staged.stage (fun () -> Simulator.compile machine ~swp:false sample_loop 4));
    Test.make ~name:"compile-u4-swp"
      (Staged.stage (fun () -> Simulator.compile machine ~swp:true sample_loop 4));
    (* Cold vs content-addressed-cache compile: capacity 0 disables the
       store, so every call re-runs the pass pipeline; the warm cache
       should answer in a digest + table lookup. *)
    Test.make ~name:"compile-u4-cold"
      (let cold = Compile_cache.create ~exe_capacity:0 ~cycles_capacity:0 () in
       Staged.stage (fun () -> Pipeline.compile ~cache:cold machine ~swp:false sample_loop 4));
    Test.make ~name:"compile-u4-cached"
      (let warm = Compile_cache.create () in
       ignore (Pipeline.compile ~cache:warm machine ~swp:false sample_loop 4);
       Staged.stage (fun () -> Pipeline.compile ~cache:warm machine ~swp:false sample_loop 4));
  ]

let run_microbenches env =
  hr "Microbenchmarks (Bechamel)";
  let tests = microbench_tests env in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"unroll-ml" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  let t =
    Table.create ~title:"classifier and compiler timings"
      [ ("operation", Table.Left); ("time per call", Table.Right) ]
  in
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row t [ name; pretty ])
    rows;
  Table.print t;
  print_endline
    "paper claims: NN lookup < 5 ms over 2,500 examples; SVM training ~30 s\n\
     (Matlab, N=2,500; the O(N^3) solve here is benchmarked at smaller N).";
  rows

(* ---------------- pipeline: parallel sweep + compile cache ---------------- *)

let run_parallel_bench config compile_rows =
  hr "Pass pipeline: sequential vs parallel labelling sweep";
  let benchmarks =
    Suite.full ~scale:(Float.min config.Config.scale 0.15) ~seed:config.Config.seed
    |> List.filteri (fun i _ -> i < 12)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* At least 2 so the domain path is exercised even on a 1-core host
     (where no wall-clock speedup is expected). *)
  let jobs = max 2 (Parallel.default_jobs ()) in
  (* Both runs start from an empty compile cache so the comparison is
     sweep work, not one run replaying the other's compiles. *)
  Compile_cache.clear Compile_cache.global;
  let seq, t_seq = time (fun () -> Labeling.collect ~jobs:1 config ~swp:false benchmarks) in
  Compile_cache.clear Compile_cache.global;
  let par, t_par = time (fun () -> Labeling.collect ~jobs config ~swp:false benchmarks) in
  let identical =
    Array.length seq = Array.length par
    && Array.for_all2
         (fun (a : Labeling.labeled) (b : Labeling.labeled) ->
           a.Labeling.bench = b.Labeling.bench && a.Labeling.cycles = b.Labeling.cycles)
         seq par
  in
  (* A repeat of the sequential sweep on the now-warm cache shows the
     content-addressed hit path. *)
  let hits0 = Compile_cache.hits Compile_cache.global in
  let _, t_warm = time (fun () -> Labeling.collect ~jobs:1 config ~swp:false benchmarks) in
  let warm_hits = Compile_cache.hits Compile_cache.global - hits0 in
  Printf.printf
    "loops=%d  sequential %.2fs | %d jobs %.2fs (%.2fx) | warm-cache rerun %.2fs \
     (%d hits) | identical=%b\n"
    (Array.length seq) t_seq jobs t_par (t_seq /. Float.max t_par 1e-9) t_warm warm_hits
    identical;
  let ns name = try List.assoc name compile_rows with Not_found -> nan in
  Printf.printf
    "{\"bench\":\"pipeline\",\"loops\":%d,\"jobs\":%d,\"seq_s\":%.3f,\"par_s\":%.3f,\
     \"speedup\":%.2f,\"identical\":%b,\"warm_s\":%.3f,\"warm_hits\":%d,\
     \"hit_rate\":%.3f,\"compile_cold_ns\":%.0f,\"compile_cached_ns\":%.0f}\n"
    (Array.length seq) jobs t_seq t_par
    (t_seq /. Float.max t_par 1e-9)
    identical t_warm warm_hits
    (Compile_cache.hit_rate Compile_cache.global)
    (ns "unroll-ml/compile-u4-cold")
    (ns "unroll-ml/compile-u4-cached")

(* ---------------- prediction serving ---------------- *)

(* A reduced pass of the serve load generator (bench/bench_serve.exe runs
   the full ramp), so the aggregate summary lines cover serving alongside
   the ML, simulator and parallel numbers. *)
let run_serve_bench () =
  hr "Prediction server: concurrent load, micro-batching";
  let artifact =
    List.find_opt Sys.file_exists
      [ "test/fixtures/golden_nn.artifact"; "fixtures/golden_nn.artifact" ]
  in
  match artifact with
  | None -> print_endline "skipped: golden artifact fixture not found (run from the repo root)"
  | Some artifact -> (
    let config = { Config.fast with Config.scale = 0.05 } in
    let pool = Serve_bench.loop_pool ~size:256 config in
    match
      Serve_bench.run ~levels:[ 1; 8 ] ~requests_per_level:1500 ~config ~artifact ~pool ()
    with
    | Error e -> Printf.printf "serve bench failed: %s\n" e
    | Ok r -> print_endline r.Serve_bench.json)

(* ---------------- incremental training ---------------- *)

(* A reduced pass of the incremental-training bench (bench/bench_train.exe
   runs the full sizes up to n=8000): one appended point into a standing
   ridge system against a cold retrain, gated on bit-identical alphas. *)
let run_train_bench () =
  hr "Incremental training: rank-1 ridge update vs cold retrain";
  let n = 600 and d = 16 and n_classes = 8 in
  let kernel = Kernel.Rbf 0.05 and gamma = 10.0 in
  let st = Random.State.make [| 42; n |] in
  let labels = Array.init (n + 1) (fun _ -> Random.State.int st n_classes) in
  let points =
    Array.map
      (fun _ -> Array.init d (fun _ -> Random.State.float st 2.0 -. 1.0))
      labels
  in
  let targets =
    Array.init n_classes (fun c ->
        Array.init (n + 1) (fun i -> if labels.(i) = c then 1.0 else -1.0))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sys = Lssvm.system_of_points ~kernel ~gamma (Array.sub points 0 n) in
  let inc, t_inc =
    time (fun () ->
        Lssvm.system_append sys points.(n);
        Lssvm.system_train sys targets)
  in
  let full, t_full =
    time (fun () ->
        Lssvm.system_train (Lssvm.system_of_points ~kernel ~gamma points) targets)
  in
  let identical =
    Array.for_all2
      (fun a b ->
        let xa = Lssvm.export a and xb = Lssvm.export b in
        Array.length xa = Array.length xb
        && Array.for_all2
             (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v)
             xa xb)
      inc full
  in
  Printf.printf
    "n=%d  append+train %.4fs | cold retrain %.3fs (%.1fx) | identical=%b\n" n t_inc
    t_full
    (t_full /. Float.max t_inc 1e-9)
    identical

let () =
  let config = Config.of_env () in
  Printf.printf
    "unroll-ml reproduction harness\n\
     config: scale=%.2f seed=%d machine=%s runs=%d noise=%.3f%s\n%!"
    config.Config.scale config.Config.seed config.Config.machine.Machine.mach_name
    config.Config.runs config.Config.noise
    (if config = Config.fast then " (FAST)" else "");
  let env = Experiments.build_env config in
  run_experiments env;
  let rows = run_microbenches env in
  run_parallel_bench config rows;
  run_serve_bench ();
  run_train_bench ()
