(* Scaling curve for the work-stealing runtime.

   Two workloads, each measured at j = 1 / 2 / 4 / all-cores (ascending, so
   the persistent pool only ever grows to the size under test):

   - the FAST-scale labelling sweep (heavy-tailed per-loop cost: the exact
     steady-state skip makes some sweeps 100x cheaper than others), and
   - a 10k-case differential-fuzzing campaign (uniform-ish per-case cost).

   Every parallel run is checked bit-identical to the j=1 baseline before
   its timing counts — a scaling number from a wrong answer is worthless.
   The compile cache is cleared before each labelling run so each j does
   full sweep work rather than replaying a previous run's compiles.

   Scheduler counters (tasks, steals, steal-misses) are sampled around the
   widest run.  Results go to stdout and BENCH_par.json (one JSON object;
   a CI artifact next to BENCH_ml.json and BENCH_sim.json).  The "cores"
   field records the host width: on a 1-core container every j collapses
   to sequential-plus-overhead, so scaling claims should be read off the
   multi-core CI runner's artifact. *)

let config = Config.fast

let fuzz_budget =
  match Sys.getenv_opt "UNROLLML_BENCH_FUZZ_BUDGET" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 10_000)
  | None -> 10_000

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let job_points () =
  let all = max 1 (Parallel.default_jobs ()) in
  List.sort_uniq compare [ 1; 2; 4; all ]

let labels_equal (a : Labeling.labeled array) (b : Labeling.labeled array) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Labeling.labeled) (y : Labeling.labeled) ->
         x.Labeling.bench = y.Labeling.bench
         && x.Labeling.loop.Loop.name = y.Labeling.loop.Loop.name
         && x.Labeling.cycles = y.Labeling.cycles)
       a b

(* A fuzz report contains loops and cases; structural equality over the
   whole record is the bit-identity gate. *)
let reports_equal (a : Fuzz_driver.report) (b : Fuzz_driver.report) = a = b

let json_curve points =
  "["
  ^ String.concat ","
      (List.map (fun (j, s, sp) -> Printf.sprintf "{\"jobs\":%d,\"s\":%.3f,\"speedup\":%.2f}" j s sp) points)
  ^ "]"

let () =
  let cores = Domain.recommended_domain_count () in
  let points = job_points () in
  Printf.printf "cores=%d, measuring at j = %s\n%!" cores
    (String.concat "/" (List.map string_of_int points));

  let benchmarks = Suite.full ~scale:config.Config.scale ~seed:config.Config.seed in

  (* --- labelling sweep ------------------------------------------------ *)
  let sweep jobs =
    Compile_cache.clear Compile_cache.global;
    time (fun () -> Labeling.collect ~jobs config ~swp:false benchmarks)
  in
  let baseline, t1 = sweep 1 in
  let label_identical = ref true in
  let label_curve =
    List.map
      (fun j ->
        if j = 1 then (1, t1, 1.0)
        else begin
          let out, t = sweep j in
          if not (labels_equal baseline out) then label_identical := false;
          (j, t, t1 /. Float.max t 1e-9)
        end)
      points
  in
  List.iter
    (fun (j, t, sp) ->
      Printf.printf "labeling  j=%-3d %.3fs (%.2fx)\n%!" j t sp)
    label_curve;

  (* --- fuzz campaign -------------------------------------------------- *)
  let tel = Telemetry.global in
  let c name = Telemetry.counter tel ~pass:"parallel" name in
  let campaign jobs = time (fun () -> Fuzz_driver.run ~jobs ~budget:fuzz_budget ~seed:7 ()) in
  let fuzz_base, f1 = campaign 1 in
  let fuzz_identical = ref true in
  let steals = ref 0 and tasks = ref 0 and misses = ref 0 in
  let fuzz_curve =
    List.map
      (fun j ->
        if j = 1 then (1, f1, 1.0)
        else begin
          let s0 = c "steals" and t0 = c "tasks" and m0 = c "steal-misses" in
          let out, t = campaign j in
          if j = List.fold_left max 1 points then begin
            steals := c "steals" - s0;
            tasks := c "tasks" - t0;
            misses := c "steal-misses" - m0
          end;
          if not (reports_equal fuzz_base out) then fuzz_identical := false;
          (j, t, f1 /. Float.max t 1e-9)
        end)
      points
  in
  List.iter
    (fun (j, t, sp) -> Printf.printf "fuzz(%d)  j=%-3d %.3fs (%.2fx)\n%!" fuzz_budget j t sp)
    fuzz_curve;

  let identical = !label_identical && !fuzz_identical in
  Printf.printf "bit-identity at every j: %b | widest run: tasks=%d steals=%d misses=%d\n%!"
    identical !tasks !steals !misses;

  let json =
    Printf.sprintf
      "{\"bench\":\"parallel-scaling\",\"cores\":%d,\"loops\":%d,\
       \"fuzz_budget\":%d,\"identical\":%b,\
       \"labeling\":%s,\"fuzz\":%s,\
       \"tasks\":%d,\"steals\":%d,\"steal_misses\":%d}"
      cores (Array.length baseline) fuzz_budget identical (json_curve label_curve)
      (json_curve fuzz_curve) !tasks !steals !misses
  in
  print_endline json;
  let oc = open_out "BENCH_par.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  if not identical then exit 1
