(* Labeling-sweep benchmark: fast simulator vs the frozen reference.

   Compiles the FAST-scale suite once (shared compile cache), then times
   the part the labelling pipeline actually repeats per (loop, factor,
   swp): create a state, run the warm-up/measure pair.  The naive side is
   [Sim_reference] on [Cache_reference] — the complete pre-optimisation
   stack, frozen verbatim — so the ratio reflects every layer of the fast
   path: array plans, shift/mask caches, shared CSR graphs, fetch skip,
   entry skip, wrap-period fast-forward.  Both sides produce (cycles,
   stats) for every executable and the run aborts the speedup claim unless
   they are bit-identical.

   Also times Deps.build against warm memoised-CSR lookups, and writes a
   one-line JSON summary to stdout and BENCH_sim.json (a CI artifact next
   to BENCH_ml.json). *)

let machine = Config.fast.Config.machine
let max_sim_iters = Config.fast.Config.max_sim_iters

let stats_tuple (s : Simulator.stats) =
  ( s.Simulator.issue_cycles,
    s.Simulator.data_stall_cycles,
    s.Simulator.fetch_stall_cycles,
    s.Simulator.branch_cycles,
    s.Simulator.entry_overhead_cycles,
    s.Simulator.pipeline_fill_cycles )

let ref_stats_tuple (s : Sim_reference.stats) =
  ( s.Sim_reference.issue_cycles,
    s.Sim_reference.data_stall_cycles,
    s.Sim_reference.fetch_stall_cycles,
    s.Sim_reference.branch_cycles,
    s.Sim_reference.entry_overhead_cycles,
    s.Sim_reference.pipeline_fill_cycles )

(* One labelling measurement, naive and fast: cold state, then the sweep's
   warm-up/measure double run. *)
let naive_pair exe =
  let st = Sim_reference.create_state machine in
  let c1, s1 = Sim_reference.run_profiled ~max_sim_iters st exe in
  let c2, s2 = Sim_reference.run_profiled ~max_sim_iters st exe in
  ((c1, ref_stats_tuple s1), (c2, ref_stats_tuple s2))

let fast_pair exe =
  let st = Simulator.create_state machine in
  let c1, s1 = Simulator.run_profiled ~max_sim_iters st exe in
  let c2, s2 = Simulator.run_profiled ~max_sim_iters st exe in
  ((c1, stats_tuple s1), (c2, stats_tuple s2))

let () =
  let benchmarks = Suite.full ~scale:Config.fast.Config.scale ~seed:Config.fast.Config.seed in
  let loops = Suite.all_loops benchmarks |> List.map snd in
  let cache = Compile_cache.create () in
  Printf.printf "compiling %d loops x 8 factors x {straight, swp}...\n%!" (List.length loops);
  let t0 = Unix.gettimeofday () in
  let exes =
    List.concat_map
      (fun loop ->
        List.concat_map
          (fun swp ->
            List.map
              (fun u -> Simulator.compile ~cache machine ~swp loop u)
              [ 1; 2; 3; 4; 5; 6; 7; 8 ])
          [ false; true ])
      loops
  in
  let t_compile = Unix.gettimeofday () -. t0 in
  Printf.printf "compiled %d executables in %.1fs\n%!" (List.length exes) t_compile;

  (* Bit-identity first: cycles and the full stats breakdown, warm runs
     included, for every executable. *)
  let mismatches = ref 0 in
  List.iter
    (fun exe -> if naive_pair exe <> fast_pair exe then incr mismatches)
    exes;
  let identical = !mismatches = 0 in
  Printf.printf "bit-identity: %d mismatches over %d executables\n%!" !mismatches
    (List.length exes);

  (* Interleaved best-of-N so drift hits both sides equally. *)
  Gc.full_major ();
  let reps = 4 in
  let t_naive = ref infinity and t_fast = ref infinity in
  let tel = Telemetry.global in
  let c name = Telemetry.counter tel ~pass:"simulator" name in
  let iters0 = c "iters-simulated" and ff0 = c "iters-fast-forwarded" in
  let es0 = c "entries-simulated" and sk0 = c "entries-skipped" in
  for _ = 1 to reps do
    let a = Unix.gettimeofday () in
    List.iter (fun exe -> ignore (naive_pair exe)) exes;
    let d = Unix.gettimeofday () -. a in
    if d < !t_naive then t_naive := d;
    let a = Unix.gettimeofday () in
    List.iter (fun exe -> ignore (fast_pair exe)) exes;
    let d = Unix.gettimeofday () -. a in
    if d < !t_fast then t_fast := d
  done;
  let iters_sim = c "iters-simulated" - iters0 in
  let iters_ff = c "iters-fast-forwarded" - ff0 in
  let entries_sim = c "entries-simulated" - es0 in
  let entries_skipped = c "entries-skipped" - sk0 in
  let speedup = !t_naive /. Float.max !t_fast 1e-9 in
  Printf.printf "labeling sim sweep (best of %d): naive %.3fs | fast %.3fs (%.2fx)\n%!" reps
    !t_naive !t_fast speedup;

  (* Dependence graphs: fresh builds vs warm memoised CSR lookups. *)
  let lat = Machine.latency machine in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let a = Unix.gettimeofday () in
      f ();
      let d = Unix.gettimeofday () -. a in
      if d < !best then best := d
    done;
    !best
  in
  let t_build =
    time_best (fun () ->
        List.iter (fun l -> ignore (Deps.to_csr (Deps.build ~latency:lat l))) loops)
  in
  let memo = Deps_memo.create () in
  List.iter (fun l -> ignore (Deps_memo.get ~memo machine l)) loops;
  let t_memo =
    time_best (fun () -> List.iter (fun l -> ignore (Deps_memo.get ~memo machine l)) loops)
  in
  let deps_speedup = t_build /. Float.max t_memo 1e-9 in
  Printf.printf "deps: build+csr %.4fs | memoised %.4fs (%.1fx) over %d loops\n%!" t_build
    t_memo deps_speedup (List.length loops);

  let json =
    Printf.sprintf
      "{\"bench\":\"sim-fast-path\",\"loops\":%d,\"executables\":%d,\
       \"max_sim_iters\":%d,\"compile_s\":%.1f,\"naive_s\":%.3f,\
       \"fast_s\":%.3f,\"speedup\":%.2f,\"identical\":%b,\
       \"iters_simulated\":%d,\"iters_fast_forwarded\":%d,\
       \"entries_simulated\":%d,\"entries_skipped\":%d,\
       \"deps_build_s\":%.4f,\"deps_memo_s\":%.4f,\"deps_speedup\":%.1f}"
      (List.length loops) (List.length exes) max_sim_iters t_compile !t_naive !t_fast speedup
      identical iters_sim iters_ff entries_sim entries_skipped t_build t_memo deps_speedup
  in
  print_endline json;
  let oc = open_out "BENCH_sim.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  if not identical then exit 1
