(* Microbenchmarks for the incremental pairwise engine.

   Builds a FAST-scale dataset cheaply — real 38-dim feature vectors from
   the synthetic suite, labels from the ORC heuristic so no labelling
   sweep is needed — then times

     - the blocked pairwise dist² matrix build ({!Mat.pairwise_dist2}),
     - one greedy candidate evaluation, incremental vs from-scratch,
     - greedy NN and SVM feature selection end-to-end: the generic
       [Greedy_select.run] drivers against the engine-backed
       [nn_run]/[svm_run] (the Table 4 path),

   and writes a one-line JSON summary to stdout and to BENCH_ml.json
   (uploaded as a CI artifact). *)

open Bechamel
open Toolkit

let build_dataset ~scale ~seed ~max_examples =
  let machine = Config.fast.Config.machine in
  let benchmarks = Suite.full ~scale ~seed in
  let examples =
    List.concat_map
      (fun (b : Suite.benchmark) ->
        Array.to_list b.Suite.loops
        |> List.mapi (fun i (loop, _) ->
               {
                 Dataset.features = Features.extract machine loop;
                 label = Orc_heuristic.no_swp machine loop - 1;
                 tag = Printf.sprintf "%s/%d" b.Suite.bname i;
                 group = b.Suite.bname;
                 costs = Array.make 8 1.0;
               })
        )
      benchmarks
  in
  let examples = List.filteri (fun i _ -> i < max_examples) examples in
  let ds = Dataset.create ~feature_names:Features.names ~n_classes:8 examples in
  Scale.apply (Scale.fit ds) ds

let time_best ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

(* ---------------- bechamel micro benches ---------------- *)

let micro_rows ds =
  let m, labels = Dataset.points_matrix ds in
  let engine = Pairwise.create (Mat.copy m) in
  (* a realistic mid-selection state: 4 committed, evaluate a 5th *)
  List.iter (Pairwise.commit engine) [ 0; 1; 2; 3 ];
  let subset = [ 0; 1; 2; 3; 4 ] in
  let tests =
    [
      Test.make
        ~name:(Printf.sprintf "pairwise-build-%d" (Mat.rows m))
        (Staged.stage (fun () -> Mat.pairwise_dist2 m));
      Test.make ~name:"cand-eval-incremental"
        (Staged.stage (fun () -> Pairwise.nn_loo_error ~cand:4 engine ~labels));
      Test.make ~name:"cand-eval-scratch"
        (Staged.stage (fun () -> Greedy_select.nn_training_error ds subset));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"pairwise" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name o acc ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) -> (name, est) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

(* ---------------- end-to-end greedy selection ---------------- *)

let () =
  let k = Config.fast.Config.greedy_k in
  let ds = build_dataset ~scale:0.15 ~seed:Config.fast.Config.seed ~max_examples:400 in
  let n = Dataset.size ds and d = Array.length ds.Dataset.feature_names in
  Printf.printf "pairwise-engine bench: n=%d d=%d k=%d\n%!" n d k;

  let rows = micro_rows ds in
  let ns name = try List.assoc ("pairwise/" ^ name) rows with Not_found -> nan in
  List.iter (fun (name, est) -> Printf.printf "  %-28s %12.0f ns/call\n" name est) rows;

  let nn_base, t_nn_base =
    time_best (fun () ->
        Greedy_select.run ~n_features:d ~k (Greedy_select.nn_training_error ds))
  in
  let nn_engine, t_nn_engine = time_best (fun () -> Greedy_select.nn_run ~k ds) in
  let nn_identical = List.map fst nn_base = List.map fst nn_engine in
  Printf.printf "greedy NN  k=%d: generic %.3fs | engine %.3fs (%.1fx) | same picks=%b\n%!"
    k t_nn_base t_nn_engine
    (t_nn_base /. Float.max t_nn_engine 1e-9)
    nn_identical;

  let kernel = Config.fast.Config.svm_kernel and gamma = Config.fast.Config.svm_gamma in
  let svm_k = min k 3 and svm_cap = 200 in
  let svm_base, t_svm_base =
    time_best ~reps:1 (fun () ->
        Greedy_select.run ~n_features:d ~k:svm_k
          (Greedy_select.svm_training_error ~kernel ~gamma ~max_examples:svm_cap ds))
  in
  let svm_engine, t_svm_engine =
    time_best ~reps:1 (fun () ->
        Greedy_select.svm_run ~kernel ~gamma ~max_examples:svm_cap ~k:svm_k ds)
  in
  let svm_identical = List.map fst svm_base = List.map fst svm_engine in
  Printf.printf "greedy SVM k=%d: generic %.3fs | engine %.3fs (%.1fx) | same picks=%b\n%!"
    svm_k t_svm_base t_svm_engine
    (t_svm_base /. Float.max t_svm_engine 1e-9)
    svm_identical;

  (* MLP training at -j1 vs -j4: the timing row is only meaningful if the
     determinism contract holds, so gate it on bit-identical parameters
     (the gradient fan-out must not change a single ULP). *)
  let mlp_hyper = { Mlp.default_hyper with Mlp.epochs = 40 } in
  let mlp_seed = Config.fast.Config.mlp_seed in
  let pairs = Dataset.points ds in
  let train_mlp jobs =
    fst (Mlp.train ~jobs ~seed:mlp_seed ~hyper:mlp_hyper ~n_classes:ds.Dataset.n_classes pairs)
  in
  let mlp_j1, t_mlp_j1 = time_best ~reps:1 (fun () -> train_mlp 1) in
  let mlp_j4, t_mlp_j4 = time_best ~reps:1 (fun () -> train_mlp 4) in
  let bits_equal a b =
    Array.length a = Array.length b
    && Array.for_all2 (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v) a b
  in
  let flatten m =
    let _, ws, bs = Mlp.export m in
    Array.concat (Array.to_list ws @ Array.to_list bs)
  in
  let mlp_identical = bits_equal (flatten mlp_j1) (flatten mlp_j4) in
  let t_mlp_predict =
    let xs = Array.map fst pairs in
    let _, t =
      time_best (fun () -> Array.iter (fun x -> ignore (Mlp.predict mlp_j1 x)) xs)
    in
    t /. float_of_int (max 1 (Array.length xs))
  in
  Printf.printf
    "mlp train (%d epochs): j1 %.3fs | j4 %.3fs (%.1fx) | bit-identical=%b | \
     predict %.0f ns/loop\n%!"
    mlp_hyper.Mlp.epochs t_mlp_j1 t_mlp_j4
    (t_mlp_j1 /. Float.max t_mlp_j4 1e-9)
    mlp_identical (t_mlp_predict *. 1e9);
  if not mlp_identical then begin
    Printf.eprintf "mlp bench: parameters differ between -j1 and -j4\n";
    exit 1
  end;

  let json =
    Printf.sprintf
      "{\"bench\":\"pairwise-engine\",\"n\":%d,\"d\":%d,\"k\":%d,\
       \"nn_generic_s\":%.3f,\"nn_engine_s\":%.3f,\"nn_speedup\":%.2f,\
       \"nn_identical\":%b,\"svm_k\":%d,\"svm_generic_s\":%.3f,\
       \"svm_engine_s\":%.3f,\"svm_speedup\":%.2f,\"svm_identical\":%b,\
       \"pairwise_build_ns\":%.0f,\"cand_incremental_ns\":%.0f,\
       \"cand_scratch_ns\":%.0f,\"cand_speedup\":%.2f,\
       \"mlp_train_j1_s\":%.3f,\"mlp_train_j4_s\":%.3f,\"mlp_train_speedup\":%.2f,\
       \"mlp_identical\":%b,\"mlp_predict_ns\":%.0f}"
      n d k t_nn_base t_nn_engine
      (t_nn_base /. Float.max t_nn_engine 1e-9)
      nn_identical svm_k t_svm_base t_svm_engine
      (t_svm_base /. Float.max t_svm_engine 1e-9)
      svm_identical
      (ns (Printf.sprintf "pairwise-build-%d" n))
      (ns "cand-eval-incremental") (ns "cand-eval-scratch")
      (ns "cand-eval-scratch" /. Float.max (ns "cand-eval-incremental") 1e-9)
      t_mlp_j1 t_mlp_j4
      (t_mlp_j1 /. Float.max t_mlp_j4 1e-9)
      mlp_identical (t_mlp_predict *. 1e9)
  in
  print_endline json;
  let oc = open_out "BENCH_ml.json" in
  output_string oc (json ^ "\n");
  close_out oc
