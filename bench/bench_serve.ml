(* SLO bench for `unroll-ml serve`: an in-process server over the golden
   NN artifact, hammered by ramped client concurrency (1 / 8 / 32
   connections by default, tens of thousands of requests total) drawn from
   the workload suite plus Fuzz.Gen adversarial loops.

   Records p50/p99/p999 latency, throughput, shed rate, the server's
   batch-size histogram and cache counters to BENCH_serve.json (a CI
   artifact next to BENCH_ml/BENCH_sim/BENCH_par).  Exits non-zero unless
   every batched server response is bit-identical to the sequential
   Predict_service answer and the mid-run hot reload dropped nothing.

   Latency percentiles are client-observed over loopback with all client
   threads sharing one domain, so read them as an upper bound; the
   batching and throughput curves are the point. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> default)
  | None -> default

let () =
  let artifact =
    Option.value
      (Sys.getenv_opt "UNROLLML_SERVE_ARTIFACT")
      ~default:"test/fixtures/golden_nn.artifact"
  in
  if not (Sys.file_exists artifact) then begin
    Printf.eprintf "bench_serve: artifact %s not found (run from the repo root)\n" artifact;
    exit 2
  end;
  (* The golden artifacts are trained at the fixture config; only the
     machine matters for serving (provenance gate + featurisation). *)
  let config = { Config.fast with Config.scale = 0.05 } in
  let requests_per_level = env_int "UNROLLML_BENCH_SERVE_REQUESTS" 8000 in
  let pool = Serve_bench.loop_pool ~size:(env_int "UNROLLML_BENCH_SERVE_POOL" 512) config in
  Printf.printf
    "serve bench: artifact=%s pool=%d loops, %d requests/level at conc %s\n%!"
    artifact (Array.length pool) requests_per_level
    (String.concat "/" (List.map string_of_int Serve_bench.default_levels));
  match
    Serve_bench.run ~requests_per_level ~config ~artifact ~pool ()
  with
  | Error e ->
    Printf.eprintf "bench_serve: %s\n" e;
    exit 1
  | Ok r ->
    print_endline r.Serve_bench.json;
    let oc = open_out "BENCH_serve.json" in
    output_string oc (r.Serve_bench.json ^ "\n");
    close_out oc;
    if not r.Serve_bench.identical then begin
      Printf.eprintf
        "bench_serve: FAILED (mismatches=%d reloads=%d) — batched serving must be \
         bit-identical to sequential prediction\n"
        r.Serve_bench.mismatches r.Serve_bench.reloads;
      exit 1
    end
